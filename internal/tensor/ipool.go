package tensor

import (
	"math/bits"
	"sync"
)

// Typed buffer pools for the int8 inference engine: the quantized
// forward path churns through int8 activation/column buffers, int16
// pack panels and int32 accumulators at the same rate the float path
// churns through float32 scratch, so they get the same size-classed
// recycling treatment as pool.go. Classes are powers of two in element
// count and share the float pool's bounds.

type typedPoolClass[T any] struct {
	mu   sync.Mutex
	free [][]T
}

type typedPool[T any] struct {
	classes [poolMaxBits + 1]typedPoolClass[T]
}

func (p *typedPool[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := poolClassFor(n)
	if c > poolMaxBits {
		return make([]T, n)
	}
	cl := &p.classes[c]
	cl.mu.Lock()
	if last := len(cl.free) - 1; last >= 0 {
		s := cl.free[last]
		cl.free[last] = nil
		cl.free = cl.free[:last]
		cl.mu.Unlock()
		return s[:n]
	}
	cl.mu.Unlock()
	return make([]T, n, 1<<c)
}

func (p *typedPool[T]) put(s []T) {
	c := cap(s)
	if c < 1<<poolMinBits || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls > poolMaxBits {
		return
	}
	cl := &p.classes[cls]
	cl.mu.Lock()
	if len(cl.free) < poolMaxPerClass {
		cl.free = append(cl.free, s[:0])
	}
	cl.mu.Unlock()
}

var (
	i8Pool  typedPool[int8]
	i16Pool typedPool[int16]
	i32Pool typedPool[int32]
)

// GetI8 returns an int8 scratch slice of length n with unspecified
// contents, recycled from the pool when possible. Release with PutI8.
func GetI8(n int) []int8 { return i8Pool.get(n) }

// PutI8 returns a slice obtained from GetI8 to the pool.
func PutI8(s []int8) { i8Pool.put(s) }

// GetI16 returns an int16 scratch slice of length n with unspecified
// contents. Release with PutI16.
func GetI16(n int) []int16 { return i16Pool.get(n) }

// PutI16 returns a slice obtained from GetI16 to the pool.
func PutI16(s []int16) { i16Pool.put(s) }

// GetI32 returns an int32 scratch slice of length n with unspecified
// contents. Release with PutI32.
func GetI32(n int) []int32 { return i32Pool.get(n) }

// PutI32 returns a slice obtained from GetI32 to the pool.
func PutI32(s []int32) { i32Pool.put(s) }
