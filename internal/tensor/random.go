package tensor

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for weight initialization and
// synthetic data generation. Every consumer in this repository threads an
// explicit *RNG so runs are reproducible end to end.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// NormFloat64 returns a standard normal sample.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// FillNormal fills t with N(mean, std²) samples.
func (r *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.data {
		t.data[i] = float32(mean + std*r.src.NormFloat64())
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*r.src.Float64())
	}
}

// KaimingNormal applies He-style initialization for a weight tensor with
// the given fan-in, suitable for layers followed by ReLU.
func (r *RNG) KaimingNormal(t *Tensor, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	r.FillNormal(t, 0, std)
}
