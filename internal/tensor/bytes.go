package tensor

import (
	"encoding/binary"
	"math/bits"
)

// Byte-scan and byte-fill kernels for the DRAM simulator's two hot
// inner loops: the victim-row flip scan (find bytes deviating from the
// fill polarity) and hammer-disturbance application (materialize a row
// as a constant fill pattern). Both have AVX2 assembly implementations
// selected behind the same CPUID gate as the GEMM kernels
// (bytes_amd64.go); the word-wise Go twins below are bit-identical:
// IndexMismatchByte's result is the well-defined first deviating index
// and FillBytes' result is the fully overwritten buffer, so portable
// and vectorized paths cannot diverge.

// indexMismatchImpl and fillBytesImpl are the runtime-selected kernel
// entry points (portable by default, AVX2 on capable amd64).
var (
	indexMismatchImpl = indexMismatchGo
	fillBytesImpl     = fillBytesGo
)

// bytesHasAVX2 records whether the assembly byte kernels were selected,
// for tests and diagnostics.
var bytesHasAVX2 bool

// IndexMismatchByte returns the index of the first byte of b that
// differs from v, or -1 when every byte equals v. A clean 4 KB page —
// the overwhelming majority during templating readback — costs one
// compare per 32-byte lane on AVX2 (one per 8-byte word portably).
func IndexMismatchByte(b []byte, v byte) int {
	if len(b) == 0 {
		return -1
	}
	return indexMismatchImpl(b, v)
}

// FillBytes overwrites b with the byte v — the disturb-path twin of
// IndexMismatchByte, used when a sparse DRAM row materializes its fill
// pattern.
func FillBytes(b []byte, v byte) {
	if len(b) == 0 {
		return
	}
	fillBytesImpl(b, v)
}

// indexMismatchGo is the portable word-wise scan.
func indexMismatchGo(b []byte, v byte) int {
	w := uint64(v) * 0x0101010101010101
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if x := binary.LittleEndian.Uint64(b[i:]) ^ w; x != 0 {
			return i + bits.TrailingZeros64(x)/8
		}
	}
	for ; i < len(b); i++ {
		if b[i] != v {
			return i
		}
	}
	return -1
}

// fillBytesGo is the portable word-wise fill.
func fillBytesGo(b []byte, v byte) {
	w := uint64(v) * 0x0101010101010101
	i := 0
	for ; i+8 <= len(b); i += 8 {
		binary.LittleEndian.PutUint64(b[i:], w)
	}
	for ; i < len(b); i++ {
		b[i] = v
	}
}
