// AVX2 micro-kernel for the blocked int8 GEMM engine (gemm_i8.go).
// Selected at runtime by gemm_i8_amd64.go when CPUID reports AVX2 with
// OS-enabled YMM state.

#include "textflag.h"

// func gemmI8Kernel4x16Asm(kc2 int, ap, bp *int16, c *int32, ldc int)
//
// Accumulates a 4×16 int32 tile over int16-pair panels:
//
//	c[r*ldc + j] += Σ_p2 ap[p2*8 + 2r]·bp[p2*32 + 2j] +
//	                     ap[p2*8 + 2r+1]·bp[p2*32 + 2j+1]
//
// Per k-pair, the B panel holds 16 interleaved (even, odd) int16 column
// pairs (two YMM loads) and the A panel holds 4 row pairs, each
// broadcast as one 32-bit lane (VPBROADCASTD). VPMADDWD multiplies the
// int16 pairs and adds each pair-product into one int32 lane — the
// exact signed dot product — and VPADDD folds it into one of the eight
// YMM accumulators kept live across the whole loop.
TEXT ·gemmI8Kernel4x16Asm(SB), NOSPLIT, $0-40
	MOVQ kc2+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8             // row stride in bytes

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	TESTQ CX, CX
	JZ    writeback

kloop:
	VMOVDQU (DI), Y12       // B column pairs 0–7
	VMOVDQU 32(DI), Y13     // B column pairs 8–15

	VPBROADCASTD (SI), Y14
	VPMADDWD     Y12, Y14, Y15
	VPADDD       Y15, Y0, Y0
	VPMADDWD     Y13, Y14, Y15
	VPADDD       Y15, Y1, Y1

	VPBROADCASTD 4(SI), Y14
	VPMADDWD     Y12, Y14, Y15
	VPADDD       Y15, Y2, Y2
	VPMADDWD     Y13, Y14, Y15
	VPADDD       Y15, Y3, Y3

	VPBROADCASTD 8(SI), Y14
	VPMADDWD     Y12, Y14, Y15
	VPADDD       Y15, Y4, Y4
	VPMADDWD     Y13, Y14, Y15
	VPADDD       Y15, Y5, Y5

	VPBROADCASTD 12(SI), Y14
	VPMADDWD     Y12, Y14, Y15
	VPADDD       Y15, Y6, Y6
	VPMADDWD     Y13, Y14, Y15
	VPADDD       Y15, Y7, Y7

	ADDQ $16, SI            // 4 int16 pairs of A
	ADDQ $64, DI            // 16 int16 pairs of B
	DECQ CX
	JNZ  kloop

writeback:
	VMOVDQU (DX), Y12
	VPADDD  Y0, Y12, Y12
	VMOVDQU Y12, (DX)
	VMOVDQU 32(DX), Y13
	VPADDD  Y1, Y13, Y13
	VMOVDQU Y13, 32(DX)
	ADDQ    R8, DX

	VMOVDQU (DX), Y12
	VPADDD  Y2, Y12, Y12
	VMOVDQU Y12, (DX)
	VMOVDQU 32(DX), Y13
	VPADDD  Y3, Y13, Y13
	VMOVDQU Y13, 32(DX)
	ADDQ    R8, DX

	VMOVDQU (DX), Y12
	VPADDD  Y4, Y12, Y12
	VMOVDQU Y12, (DX)
	VMOVDQU 32(DX), Y13
	VPADDD  Y5, Y13, Y13
	VMOVDQU Y13, 32(DX)
	ADDQ    R8, DX

	VMOVDQU (DX), Y12
	VPADDD  Y6, Y12, Y12
	VMOVDQU Y12, (DX)
	VMOVDQU 32(DX), Y13
	VPADDD  Y7, Y13, Y13
	VMOVDQU Y13, 32(DX)

	VZEROUPPER
	RET

// func packBPanelI8Asm(dst *int16, b *int8, ldb, npairs int)
//
// Packs npairs full k-pairs of one 16-column B panel: for pair i, rows
// b[2i·ldb…] and b[(2i+1)·ldb…] are sign-extended to int16 and
// interleaved column-wise, producing the 32-int16 (64-byte) pair layout
// gemmI8Kernel4x16Asm consumes. VPUNPCK interleaves within 128-bit
// lanes, so a VPERM2I128 pass restores sequential column order.
TEXT ·packBPanelI8Asm(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), R8
	MOVQ npairs+24(FP), CX

	LEAQ (SI)(R8*1), DX     // odd row pointer
	SHLQ $1, R8             // advance both rows by 2·ldb per pair

	TESTQ CX, CX
	JZ    packdone

packloop:
	VPMOVSXBW (SI), Y0      // 16 int8 of even row → int16
	VPMOVSXBW (DX), Y1      // 16 int8 of odd row → int16

	VPUNPCKLWD Y1, Y0, Y2   // lanes: e0o0…e3o3 | e8o8…e11o11
	VPUNPCKHWD Y1, Y0, Y3   // lanes: e4o4…e7o7 | e12o12…e15o15
	VPERM2I128 $0x20, Y3, Y2, Y4 // columns 0–7 interleaved
	VPERM2I128 $0x31, Y3, Y2, Y5 // columns 8–15 interleaved

	VMOVDQU Y4, (DI)
	VMOVDQU Y5, 32(DI)

	ADDQ $64, DI
	ADDQ R8, SI
	ADDQ R8, DX
	DECQ CX
	JNZ  packloop

packdone:
	VZEROUPPER
	RET
