package tensor

// Blocked GEMM engine.
//
// The three matmul entry points (MatMulInto, MatMulATBInto,
// MatMulABTInto) all lower to gemm(), a cache-blocked kernel in the
// classic BLIS/GotoBLAS shape: the k dimension is split into KC-deep
// slabs, B is packed once per slab into NR-wide column panels, A is
// packed per MC-tall row block into MR-wide row panels, and an MR×NR
// register-tiled micro-kernel runs over the packed panels. Packing
// pays O(m·k + k·n) copies to make the O(m·n·k) inner loop read purely
// sequential memory, and the register tile keeps MR·NR accumulators
// live across the whole k loop with no C traffic inside it.
//
// Two micro-kernels exist: a 6×16 AVX2/FMA assembly kernel
// (gemm_amd64.s, selected at init when the CPU supports it) and a
// portable 2×4 pure-Go kernel sized so all accumulators stay in
// registers. The panel layout adapts to the selected tile via
// gemmMR/gemmNR.
//
// Both operands are described by (row, col) strides, so the transposed
// variants (AᵀB for weight gradients, ABᵀ for input gradients) reuse
// the same engine — the strides only affect the packing routines, never
// the micro-kernel.
//
// Pack buffers come from the package buffer pool (pool.go), so a
// training loop reuses the same panels call after call. Row blocks are
// distributed over the persistent worker pool; with maxWorkers == 1
// everything runs inline on the caller's goroutine.

const (
	gemmKC = 256 // k-slab depth: one packed B panel (KC×NR) stays L1-resident
	gemmNC = 512 // col-block width: bounds the packed B slab to KC×NC

	// Upper bounds over all kernels, for stack scratch at edge tiles.
	gemmMaxMR = 6
	gemmMaxNR = 16

	// gemmMinFlops gates the blocked path: below this m·n·k the packing
	// overhead outweighs the micro-kernel's wins and the naive kernels
	// are faster.
	gemmMinFlops = 1 << 13
)

// Micro-kernel configuration. The defaults are the portable pure-Go
// kernel; init() in gemm_amd64.go upgrades them when the CPU has
// AVX2+FMA.
var (
	gemmMR     = 2
	gemmNR     = 4
	gemmMC     = 64 // row-block height: packed A block (MC×KC) stays L2-resident
	gemmKernel = gemmKernel2x4
)

// gemmDotABT, when non-nil, handles the no-pack A·Bᵀ shape: both
// operands have contiguous k-rows (csA == 1, rsB == 1), so every C
// element is a dot product of two contiguous vectors and the packing
// passes are pure overhead. Profiling the training step on narrow
// models shows packB costing ~4× the FMA kernel when m is tiny (the
// per-layer weight-gradient GEMMs have m == outC as low as 4), which
// is exactly the shape this path removes. The gate below is a pure
// function of the operand shape — never of worker count — so results
// stay bit-identical across parallelism settings.
var gemmDotABT func(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32)

// gemmAxpyB, when non-nil, handles the complementary no-pack shape:
// op(B) has contiguous n-rows (csB == 1) and either m or k is small,
// so C is built row by row as k broadcast-FMA passes over B's rows —
// again with no packing. This covers the forward conv GEMMs (m == outC
// is small) and the input-gradient GEMMs (k == outC is small). Same
// determinism argument as gemmDotABT: the gate and the per-element
// summation order depend only on the shape.
var gemmAxpyB func(m, n, k int, a []float32, rsA, csA int, b []float32, ldb int, c []float32)

// gemm computes C = op(A)·op(B) into c (m×n, row-major, fully
// overwritten). op(A) is m×k with element (i,p) at a[i*rsA+p*csA];
// op(B) is k×n with element (p,j) at b[p*rsB+j*csB].
func gemm(m, n, k int, a []float32, rsA, csA int, b []float32, rsB, csB int, c []float32) {
	c = c[:m*n]
	if gemmDotABT != nil && csA == 1 && rsB == 1 && m <= 8 && m*n <= 1024 && k >= 64 {
		gemmDotABT(m, n, k, a, rsA, b, csB, c)
		return
	}
	if gemmAxpyB != nil && csB == 1 && n >= 64 && (m <= 16 || k <= 16) {
		gemmAxpyB(m, n, k, a, rsA, csA, b, rsB, c)
		return
	}
	for i := range c {
		c[i] = 0
	}
	if maxWorkers <= 1 {
		gemmSerial(m, n, k, a, rsA, csA, b, rsB, csB, c)
		return
	}
	gemmParallel(m, n, k, a, rsA, csA, b, rsB, csB, c)
}

// gemmParallel is the multi-worker path. It lives in its own function
// so the worker closure's captures only force heap escapes here — with
// the branch inline in gemm, every serial call paid an allocation for
// the captured parameters at function entry.
func gemmParallel(m, n, k int, a []float32, rsA, csA int, b []float32, rsB, csB int, c []float32) {
	mr, nr, mc := gemmMR, gemmNR, gemmMC
	for pc := 0; pc < k; pc += gemmKC {
		kc := min(gemmKC, k-pc)
		for jc := 0; jc < n; jc += gemmNC {
			nc := min(gemmNC, n-jc)
			nPanels := (nc + nr - 1) / nr
			pb := GetF32(nPanels * nr * kc)
			packBPanels(pb, b, rsB, csB, pc, kc, jc, nc)

			nBlocks := (m + mc - 1) / mc
			ParallelChunks(nBlocks, maxWorkers, func(blo, bhi int) {
				mPanels := (mc + mr - 1) / mr
				pa := GetF32(mPanels * mr * kc)
				// Edge-tile scratch: pooled (not stack) because passing
				// it through the kernel function variable would force a
				// heap escape per tile.
				tile := GetF32(gemmMaxMR * gemmMaxNR)
				for blk := blo; blk < bhi; blk++ {
					ic := blk * mc
					bm := min(mc, m-ic)
					packAPanels(pa, a, rsA, csA, ic, bm, pc, kc)
					gemmBlock(c, n, ic, bm, jc, nc, kc, pa, pb, tile)
				}
				PutF32(tile)
				PutF32(pa)
			})
			PutF32(pb)
		}
	}
}

// gemmSerial is the single-worker path: identical blocking, but no
// ParallelChunks closures, so the steady-state hot loop performs zero
// allocations (all buffers are pooled and reused across the k/n slabs).
func gemmSerial(m, n, k int, a []float32, rsA, csA int, b []float32, rsB, csB int, c []float32) {
	mr, nr, mc := gemmMR, gemmNR, gemmMC
	kcMax := min(gemmKC, k)
	ncMax := min(gemmNC, n)
	pb := GetF32(((ncMax + nr - 1) / nr) * nr * kcMax)
	pa := GetF32(((mc + mr - 1) / mr) * mr * kcMax)
	tile := GetF32(gemmMaxMR * gemmMaxNR)
	for pc := 0; pc < k; pc += gemmKC {
		kc := min(gemmKC, k-pc)
		for jc := 0; jc < n; jc += gemmNC {
			nc := min(gemmNC, n-jc)
			packBPanels(pb, b, rsB, csB, pc, kc, jc, nc)
			for ic := 0; ic < m; ic += mc {
				bm := min(mc, m-ic)
				packAPanels(pa, a, rsA, csA, ic, bm, pc, kc)
				gemmBlock(c, n, ic, bm, jc, nc, kc, pa, pb, tile)
			}
		}
	}
	PutF32(tile)
	PutF32(pa)
	PutF32(pb)
}

// packAPanels packs the mc×kc block of op(A) starting at row i0, depth
// p0 into MR-row panels: panel ir holds rows i0+MR·ir…, with element
// (p, r) at dst[ir·MR·kc + p·MR + r]. Rows past mc are zero-filled so
// the micro-kernel never needs a row bound.
func packAPanels(dst, a []float32, rs, cs, i0, mc, p0, kc int) {
	mr := gemmMR
	idx := 0
	for ir := 0; ir < mc; ir += mr {
		rows := min(mr, mc-ir)
		base := (i0 + ir) * rs
		for p := 0; p < kc; p++ {
			off := base + (p0+p)*cs
			for r := 0; r < rows; r++ {
				dst[idx+r] = a[off+r*rs]
			}
			for r := rows; r < mr; r++ {
				dst[idx+r] = 0
			}
			idx += mr
		}
	}
}

// packBPanels packs the kc×nc block of op(B) starting at depth p0,
// column j0 into NR-column panels: panel jr holds columns j0+NR·jr…,
// with element (p, c) at dst[jr·NR·kc + p·NR + c]. Columns past nc are
// zero-filled.
func packBPanels(dst, b []float32, rs, cs, p0, kc, j0, nc int) {
	nr := gemmNR
	idx := 0
	for jr := 0; jr < nc; jr += nr {
		cols := min(nr, nc-jr)
		base := (j0 + jr) * cs
		for p := 0; p < kc; p++ {
			off := base + (p0+p)*rs
			for cI := 0; cI < cols; cI++ {
				dst[idx+cI] = b[off+cI*cs]
			}
			for cI := cols; cI < nr; cI++ {
				dst[idx+cI] = 0
			}
			idx += nr
		}
	}
}

// gemmBlock multiplies one packed mc×kc A block against the packed
// kc×nc B slab, accumulating into the C window at (ic, jc). ldc is the
// full row stride of C. Full tiles go straight to the micro-kernel;
// remainder tiles run through the caller's scratch tile (≥ MR·NR,
// re-zeroed per use) so the kernel never needs bounds handling.
func gemmBlock(c []float32, ldc, ic, mc, jc, nc, kc int, pa, pb, tile []float32) {
	mr, nr := gemmMR, gemmNR
	kern := gemmKernel
	for jr := 0; jr < nc; jr += nr {
		bp := pb[(jr/nr)*nr*kc:]
		cols := min(nr, nc-jr)
		for ir := 0; ir < mc; ir += mr {
			ap := pa[(ir/mr)*mr*kc:]
			rows := min(mr, mc-ir)
			cOff := (ic+ir)*ldc + jc + jr
			if rows == mr && cols == nr {
				kern(kc, ap, bp, c[cOff:], ldc)
			} else {
				t := tile[:mr*nr]
				for i := range t {
					t[i] = 0
				}
				kern(kc, ap, bp, t, nr)
				for r := 0; r < rows; r++ {
					cr := c[cOff+r*ldc:]
					tr := t[r*nr:]
					for cI := 0; cI < cols; cI++ {
						cr[cI] += tr[cI]
					}
				}
			}
		}
	}
}

// gemmKernel2x4 accumulates a full 2×4 tile: C[0..2, 0..4] += Aᵖ·Bᵖ,
// where Aᵖ and Bᵖ are packed kc-deep panels laid out p-major. c
// addresses the tile's top-left element with row stride ldc. The tile
// is sized so the eight accumulators plus the six operands of each step
// all stay in registers — the fastest no-spill shape for the scalar
// code the Go compiler generates.
func gemmKernel2x4(kc int, ap, bp, c []float32, ldc int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	ap = ap[: 2*kc : 2*kc]
	bp = bp[: 4*kc : 4*kc]
	ai := 0
	for p := 0; p <= len(bp)-4; p += 4 {
		a0, a1 := ap[ai], ap[ai+1]
		b0, b1, b2, b3 := bp[p], bp[p+1], bp[p+2], bp[p+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ai += 2
	}
	c0 := c[0:4]
	c0[0] += c00
	c0[1] += c01
	c0[2] += c02
	c0[3] += c03
	c1 := c[ldc : ldc+4]
	c1[0] += c10
	c1[1] += c11
	c1[2] += c12
	c1[3] += c13
}
