// AVX2 byte-scan and byte-fill kernels (bytes.go). Selected at runtime
// by bytes_amd64.go behind the same CPUID gate as the GEMM kernels.

#include "textflag.h"

// func indexMismatchAsm(p *byte, n int, v byte) int
//
// Returns the index of the first byte of p[0:n] that differs from v,
// or -1. Main loop compares 32 bytes per iteration (VPCMPEQB +
// VPMOVMSKB); a clean lane costs one compare-and-branch. The first
// dirty lane resolves the byte index with BSF on the inverted mask.
TEXT ·indexMismatchAsm(SB), NOSPLIT, $0-32
	MOVQ    p+0(FP), SI
	MOVQ    n+8(FP), CX
	MOVBQZX v+16(FP), AX
	MOVQ    AX, X0
	VPBROADCASTB X0, Y0
	XORQ    DX, DX          // running offset

loop32:
	LEAQ 32(DX), BX
	CMPQ BX, CX
	JGT  tail
	VMOVDQU (SI)(DX*1), Y1
	VPCMPEQB Y0, Y1, Y1
	VPMOVMSKB Y1, BX
	XORL $-1, BX            // 1-bits now mark mismatches
	JNZ  found32
	ADDQ $32, DX
	JMP  loop32

found32:
	BSFL BX, BX
	LEAQ (DX)(BX*1), AX
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

tail:
	CMPQ DX, CX
	JGE  clean
	MOVBQZX (SI)(DX*1), BX
	CMPB BL, AL
	JNE  foundtail
	INCQ DX
	JMP  tail

foundtail:
	VZEROUPPER
	MOVQ DX, ret+24(FP)
	RET

clean:
	VZEROUPPER
	MOVQ $-1, ret+24(FP)
	RET

// func fillBytesAsm(p *byte, n int, v byte)
//
// Overwrites p[0:n] with v, 32 bytes per store in the main loop.
TEXT ·fillBytesAsm(SB), NOSPLIT, $0-17
	MOVQ    p+0(FP), SI
	MOVQ    n+8(FP), CX
	MOVBQZX v+16(FP), AX
	MOVQ    AX, X0
	VPBROADCASTB X0, Y0
	XORQ    DX, DX

floop32:
	LEAQ 32(DX), BX
	CMPQ BX, CX
	JGT  ftail
	VMOVDQU Y0, (SI)(DX*1)
	ADDQ $32, DX
	JMP  floop32

ftail:
	CMPQ DX, CX
	JGE  fdone
	MOVB AL, (SI)(DX*1)
	INCQ DX
	JMP  ftail

fdone:
	VZEROUPPER
	RET
