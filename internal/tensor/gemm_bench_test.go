package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks at the shapes the ResNet-20 / VGG-11 models
// actually hit, plus the 128×576×1024 headline shape from the kernel
// engine's acceptance target. Run with:
//
//	go test -bench 'MatMul|Gemm' -benchmem ./internal/tensor/...
//
// Each blocked benchmark has a matching *Naive twin over the retained
// reference kernel, so the speedup is measurable in one run.
// Benchmarks force maxWorkers=1: single-thread throughput is the
// number that matters on the 1-CPU evaluation box.

type gemmBenchShape struct {
	name    string
	m, k, n int
}

// conv layers lower to (outC × inC·KH·KW) · (inC·KH·KW × OH·OW).
var gemmBenchShapes = []gemmBenchShape{
	{"headline_128x576x1024", 128, 576, 1024},     // acceptance-target shape
	{"resnet20_w1_L1_16x144x1024", 16, 144, 1024}, // 16ch 3×3 on 32×32
	{"resnet20_w1_L3_64x576x64", 64, 576, 64},     // 64ch 3×3 on 8×8
	{"vgg11_w025_128x1152x64", 128, 1152, 64},     // 512·w ch 3×3 on 8×8
	{"linear_fwd_32x128x10", 32, 128, 10},         // fc head, batch 32
}

func benchTensors(m, k, n int) (a, b, c *Tensor) {
	rng := NewRNG(5)
	a, b, c = New(m, k), New(k, n), New(m, n)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	return
}

func BenchmarkMatMul(b *testing.B) {
	for _, s := range gemmBenchShapes {
		b.Run(s.name, func(b *testing.B) {
			x, y, c := benchTensors(s.m, s.k, s.n)
			prev := SetMaxWorkers(1)
			defer SetMaxWorkers(prev)
			b.SetBytes(int64(2 * s.m * s.k * s.n)) // FLOPs per op ≈ throughput proxy
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(c, x, y)
			}
		})
	}
}

func BenchmarkMatMulNaive(b *testing.B) {
	for _, s := range gemmBenchShapes {
		b.Run(s.name, func(b *testing.B) {
			x, y, c := benchTensors(s.m, s.k, s.n)
			prev := SetMaxWorkers(1)
			defer SetMaxWorkers(prev)
			b.SetBytes(int64(2 * s.m * s.k * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matMulNaiveInto(c, x, y)
			}
		})
	}
}

// The gradient kernels: dW = Aᵀ·B and dX = A·Bᵀ at a conv-backward
// representative shape.
func BenchmarkMatMulATB(b *testing.B) {
	benchGradKernel(b, func(c, a, x *Tensor) { MatMulATBInto(c, a, x) }, true)
}

func BenchmarkMatMulATBNaive(b *testing.B) {
	benchGradKernel(b, func(c, a, x *Tensor) { matMulNaiveATBInto(c, a, x) }, true)
}

func BenchmarkMatMulABT(b *testing.B) {
	benchGradKernel(b, func(c, a, x *Tensor) { MatMulABTInto(c, a, x) }, false)
}

func BenchmarkMatMulABTNaive(b *testing.B) {
	benchGradKernel(b, func(c, a, x *Tensor) { matMulNaiveABTInto(c, a, x) }, false)
}

func benchGradKernel(b *testing.B, fn func(c, a, x *Tensor), atb bool) {
	const m, k, n = 64, 576, 256
	rng := NewRNG(5)
	var a, x *Tensor
	if atb {
		a, x = New(k, m), New(k, n) // dst = Aᵀ·B
	} else {
		a, x = New(m, k), New(n, k) // dst = A·Bᵀ
	}
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(x, 0, 1)
	c := New(m, n)
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	b.SetBytes(int64(2 * m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(c, a, x)
	}
}

// BenchmarkGemmParallel measures the worker-pool path (no-op speedup on
// a 1-CPU box, but it must not be slower than maxWorkers=1).
func BenchmarkGemmParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			x, y, c := benchTensors(256, 576, 512)
			prev := SetMaxWorkers(workers)
			defer SetMaxWorkers(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(c, x, y)
			}
		})
	}
}
