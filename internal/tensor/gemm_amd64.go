package tensor

// Runtime selection of the AVX2/FMA micro-kernel. The pure-Go 2×4
// kernel remains the fallback on CPUs without AVX2 (or when the OS has
// not enabled YMM state).

// cpuid and xgetbv0 are implemented in gemm_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func gemmKernel6x16Asm(kc int, ap, bp, c *float32, ldc int)

//go:noescape
func dotKernel1x4Asm(k16 int, a, b0, b1, b2, b3, dst *float32)

//go:noescape
func saxpyKernelAsm(n32 int, alpha float32, x, y *float32)

// gemmHasAVX2 records whether the assembly kernel was selected, for
// tests and diagnostics.
var gemmHasAVX2 bool

func init() {
	if !cpuSupportsAVX2FMA() {
		return
	}
	gemmHasAVX2 = true
	gemmMR, gemmNR = 6, 16
	gemmMC = 96 // 16 six-row panels per L2 block
	gemmKernel = gemmKernelAVX2
	gemmDotABT = gemmDotABTAVX2
	gemmAxpyB = gemmAxpyBAVX2
}

func cpuSupportsAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
		want         = cpuidFMA | cpuidOSXSAVE | cpuidAVX
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&want != want {
		return false
	}
	// The OS must save/restore XMM and YMM state across context
	// switches before AVX may be used.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// gemmKernelAVX2 adapts packed-panel slices to the assembly kernel's
// pointer ABI.
func gemmKernelAVX2(kc int, ap, bp, c []float32, ldc int) {
	gemmKernel6x16Asm(kc, &ap[0], &bp[0], &c[0], ldc)
}

// gemmDotABTAVX2 computes C = A·Bᵀ for the contiguous-k shape without
// packing either operand: row i of A and row j of B are both k-long
// contiguous vectors, and the assembly kernel produces four dot
// products per call. k tails past the 16-wide main loop and n tails
// past the 4-column groups run in scalar Go — their summation order is
// a fixed function of the shape, so results do not depend on worker
// count. C is fully overwritten.
func gemmDotABTAVX2(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32) {
	k16 := k &^ 15
	var dst [4]float32
	for i := 0; i < m; i++ {
		ar := a[i*lda : i*lda+k]
		ci := c[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*ldb : (j+0)*ldb+k]
			b1 := b[(j+1)*ldb : (j+1)*ldb+k]
			b2 := b[(j+2)*ldb : (j+2)*ldb+k]
			b3 := b[(j+3)*ldb : (j+3)*ldb+k]
			if k16 > 0 {
				dotKernel1x4Asm(k16, &ar[0], &b0[0], &b1[0], &b2[0], &b3[0], &dst[0])
			} else {
				dst[0], dst[1], dst[2], dst[3] = 0, 0, 0, 0
			}
			for p := k16; p < k; p++ {
				ap := ar[p]
				dst[0] += ap * b0[p]
				dst[1] += ap * b1[p]
				dst[2] += ap * b2[p]
				dst[3] += ap * b3[p]
			}
			ci[j], ci[j+1], ci[j+2], ci[j+3] = dst[0], dst[1], dst[2], dst[3]
		}
		for ; j < n; j++ {
			br := b[j*ldb : j*ldb+k]
			var s float32
			for p := 0; p < k; p++ {
				s += ar[p] * br[p]
			}
			ci[j] = s
		}
	}
}

// gemmAxpyBAVX2 computes C = op(A)·op(B) for the contiguous-n-row
// shape without packing: row i of C is accumulated as k broadcast-FMA
// (axpy) passes c[i,:] += a(i,p)·b[p,:]. A is read with scalar loads,
// so its strides are unconstrained. n tails past the 32-wide main loop
// run in scalar Go with the same p-major order. C is fully
// overwritten.
func gemmAxpyBAVX2(m, n, k int, a []float32, rsA, csA int, b []float32, ldb int, c []float32) {
	n32 := n &^ 31
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		for j := range ci {
			ci[j] = 0
		}
		ab := i * rsA
		for p := 0; p < k; p++ {
			alpha := a[ab+p*csA]
			br := b[p*ldb : p*ldb+n]
			if n32 > 0 {
				saxpyKernelAsm(n32, alpha, &br[0], &ci[0])
			}
			for j := n32; j < n; j++ {
				ci[j] += alpha * br[j]
			}
		}
	}
}
