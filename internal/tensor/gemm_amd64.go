package tensor

// Runtime selection of the AVX2/FMA micro-kernel. The pure-Go 2×4
// kernel remains the fallback on CPUs without AVX2 (or when the OS has
// not enabled YMM state).

// cpuid and xgetbv0 are implemented in gemm_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func gemmKernel6x16Asm(kc int, ap, bp, c *float32, ldc int)

// gemmHasAVX2 records whether the assembly kernel was selected, for
// tests and diagnostics.
var gemmHasAVX2 bool

func init() {
	if !cpuSupportsAVX2FMA() {
		return
	}
	gemmHasAVX2 = true
	gemmMR, gemmNR = 6, 16
	gemmMC = 96 // 16 six-row panels per L2 block
	gemmKernel = gemmKernelAVX2
}

func cpuSupportsAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
		want         = cpuidFMA | cpuidOSXSAVE | cpuidAVX
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&want != want {
		return false
	}
	// The OS must save/restore XMM and YMM state across context
	// switches before AVX may be used.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// gemmKernelAVX2 adapts packed-panel slices to the assembly kernel's
// pointer ABI.
func gemmKernelAVX2(kc int, ap, bp, c []float32, ldc int) {
	gemmKernel6x16Asm(kc, &ap[0], &bp[0], &c[0], ldc)
}
