package tensor

// Im2ColI8 lowers one quantized image into columns of a shared batched
// column matrix, the int8 twin of Im2Col generalized for the quantized
// engine's channel-major batch layout.
//
// The image's channel ch lives at img[ch*chanStride : ch*chanStride+h*w]
// (chanStride = h*w recovers the plain CHW layout; the quantized
// forward pass passes chanStride = n*h*w with img pointing at sample
// i's plane inside a CNHW activation block). The (C·KH·KW) × (OH·OW)
// column block is written into dst with row stride dstStride at column
// offset colOff, so every sample of a batch lands in one wide matrix
// and the whole layer reduces to a single GEMM. Zero padding emits the
// zero code, which dequantizes to 0.0 exactly under symmetric
// quantization.
func Im2ColI8(img []int8, chanStride, c, h, w, kh, kw, stride, pad int, dst []int8, dstStride, colOff int) (oh, ow int) {
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	row := 0
	for ch := 0; ch < c; ch++ {
		base := ch * chanStride
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				out := dst[row*dstStride+colOff:]
				idx := 0
				// Valid ox range: 0 ≤ ox·stride + kx − pad < w.
				xlo := 0
				if pad > kx {
					xlo = (pad - kx + stride - 1) / stride
				}
				xhi := (w - 1 - kx + pad) / stride
				if xhi >= ow {
					xhi = ow - 1
				}
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h || xhi < xlo {
						zeroI8(out[idx : idx+ow])
						idx += ow
						continue
					}
					rowBase := base + iy*w
					zeroI8(out[idx : idx+xlo])
					if stride == 1 {
						// Contiguous interior: one memmove per row.
						lo := rowBase + xlo + kx - pad
						copy(out[idx+xlo:idx+xhi+1], img[lo:lo+xhi+1-xlo])
					} else {
						for ox := xlo; ox <= xhi; ox++ {
							out[idx+ox] = img[rowBase+ox*stride+kx-pad]
						}
					}
					zeroI8(out[idx+xhi+1 : idx+ow])
					idx += ow
				}
				row++
			}
		}
	}
	return oh, ow
}

func zeroI8(s []int8) {
	for i := range s {
		s[i] = 0
	}
}
