package tensor

import "math"

// AddInto computes dst = a + b elementwise. All three tensors must share
// a shape; dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	checkSame3(dst, a, b)
	da, db, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = da[i] + db[i]
	}
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSame3(dst, a, b)
	da, db, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = da[i] - db[i]
	}
}

// MulInto computes dst = a * b elementwise.
func MulInto(dst, a, b *Tensor) {
	checkSame3(dst, a, b)
	da, db, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = da[i] * db[i]
	}
}

// Scale multiplies every element of t by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled adds s*o to t in place (axpy). Shapes must match.
func (t *Tensor) AddScaled(o *Tensor, s float32) {
	checkSame2(t, o)
	td, od := t.data, o.data
	for i := range td {
		td[i] += s * od[i]
	}
}

// Clamp limits every element of t to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float32) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// Sign writes sgn(t) into dst: -1, 0 or +1 per element.
func Sign(dst, t *Tensor) {
	checkSame2(dst, t)
	for i, v := range t.data {
		switch {
		case v > 0:
			dst.data[i] = 1
		case v < 0:
			dst.data[i] = -1
		default:
			dst.data[i] = 0
		}
	}
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return float32(s)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns, for a 2-D tensor, the column index of the maximum
// element in row r.
func (t *Tensor) ArgMaxRow(r int) int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := t.shape[1]
	row := t.data[r*cols : (r+1)*cols]
	best := 0
	for i := 1; i < cols; i++ {
		if row[i] > row[best] {
			best = i
		}
	}
	return best
}

// Dot returns the inner product of two equally shaped tensors.
func Dot(a, b *Tensor) float32 {
	checkSame2(a, b)
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return float32(s)
}

// Norm2 returns the Euclidean norm of the tensor.
func (t *Tensor) Norm2() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

func checkSame2(a, b *Tensor) {
	if !a.SameShape(b) {
		panic("tensor: shape mismatch")
	}
}

func checkSame3(a, b, c *Tensor) {
	if !a.SameShape(b) || !a.SameShape(c) {
		panic("tensor: shape mismatch")
	}
}
