package tensor

// Runtime selection of the AVX2 int8 micro-kernel. The portable 2×4
// pure-Go kernel remains the fallback, sharing the CPUID probe with the
// float engine (gemm_amd64.go). The int8 kernel needs only AVX2 (for
// VPMADDWD/VPBROADCASTD on YMM), which cpuSupportsAVX2FMA implies.

//go:noescape
func gemmI8Kernel4x16Asm(kc2 int, ap, bp *int16, c *int32, ldc int)

//go:noescape
func packBPanelI8Asm(dst *int16, b *int8, ldb, npairs int)

// gemmI8HasAVX2 records whether the assembly kernel was selected, for
// tests and diagnostics.
var gemmI8HasAVX2 bool

func init() {
	if !cpuSupportsAVX2FMA() {
		return
	}
	gemmI8HasAVX2 = true
	gemmI8MR, gemmI8NR = 4, 16
	gemmI8Kernel = gemmI8KernelAVX2
	packBPanelFast = packBPanelI8Asm
}

// gemmI8KernelAVX2 adapts packed-panel slices to the assembly kernel's
// pointer ABI.
func gemmI8KernelAVX2(kc2 int, ap, bp []int16, c []int32, ldc int) {
	gemmI8Kernel4x16Asm(kc2, &ap[0], &bp[0], &c[0], ldc)
}
