package rowhammer

import (
	"fmt"

	"rowhammer/internal/core"
	"rowhammer/internal/data"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
)

// Trigger is the backdoor input pattern Δx (a square patch whose pixels
// the attack optimizes).
type Trigger = data.Trigger

// Victim bundles a trained clean model with its data splits — the
// deployment the attacker targets.
type Victim struct {
	result *pretrain.Result
	cfg    models.Config
}

// VictimConfig selects the victim model and training scale.
type VictimConfig struct {
	// Arch is one of the supported architectures: resnet20, resnet32,
	// resnet18, resnet34, resnet50, vgg11, vgg16, bin-resnet32.
	Arch string
	// Classes is the task size; 0 picks the architecture's default
	// (10, or 100 for the ImageNet-scale ResNets).
	Classes int
	// WidthMult scales channel counts; 0 means 0.25 (laptop friendly).
	WidthMult float64
	// TrainSamples/TestSamples/Epochs size the synthetic pretraining;
	// zero values pick quick defaults.
	TrainSamples int
	TestSamples  int
	Epochs       int
	// Seed fixes all randomness.
	Seed int64
}

// TrainVictim trains (and caches per identical config) a clean victim
// model on the built-in synthetic task.
func TrainVictim(cfg VictimConfig) (*Victim, error) {
	if cfg.Arch == "" {
		cfg.Arch = "resnet20"
	}
	if cfg.WidthMult == 0 {
		cfg.WidthMult = 0.25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	classes := cfg.Classes
	dcfg := data.SynthCIFAR(0, cfg.Seed)
	if classes == 0 {
		classes = 10
		if cfg.Arch == "resnet34" || cfg.Arch == "resnet50" {
			classes = 100
			dcfg = data.SynthImageNet(0, cfg.Seed)
		}
	}
	mcfg := models.Config{Arch: cfg.Arch, Classes: classes, WidthMult: cfg.WidthMult, Seed: cfg.Seed}
	res, err := pretrain.TrainCached(pretrain.Config{
		Model:        mcfg,
		Data:         dcfg,
		TrainSamples: cfg.TrainSamples,
		TestSamples:  cfg.TestSamples,
		Epochs:       cfg.Epochs,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Victim{result: res, cfg: mcfg}, nil
}

// CleanAccuracy returns the victim's clean test accuracy.
func (v *Victim) CleanAccuracy() float64 { return v.result.Accuracy }

// NumParams returns the victim's parameter count (one byte each when
// deployed 8-bit quantized).
func (v *Victim) NumParams() int { return v.result.Model.NumParams() }

// WeightFilePages returns how many 4 KB pages the deployed weight file
// occupies — the hard ceiling on the attack's flip budget.
func (v *Victim) WeightFilePages() int {
	return (v.NumParams() + quant.PageSize - 1) / quant.PageSize
}

// AttackConfig drives the offline phase (Algorithm 1).
type AttackConfig struct {
	// TargetClass is the backdoor's target label.
	TargetClass int
	// NFlip is the bit-flip budget; 0 picks pages/7 (≥3).
	NFlip int
	// Iterations is the optimization length; 0 picks 100.
	Iterations int
	// Alpha blends clean (1−α) and triggered (α) losses; 0 picks 0.5.
	Alpha float32
	// Epsilon is the FGSM trigger step; 0 picks 0.02.
	Epsilon float32
	// TriggerSize is the square trigger edge; 0 picks 10.
	TriggerSize int
}

// Offline is the offline-phase product: the backdoored weight file and
// the learned trigger.
type Offline struct {
	inner   *core.Result
	model   *modelHandle
	target  int
	NFlip   int
	Trigger *Trigger
}

type modelHandle struct {
	victim *Victim
}

// InjectBackdoor runs Algorithm 1 (CFT+BR) against a fresh clone of the
// victim and returns the flip set and trigger.
func InjectBackdoor(v *Victim, cfg AttackConfig) (*Offline, error) {
	model, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	nflip := cfg.NFlip
	if nflip == 0 {
		nflip = v.WeightFilePages() / 7
		if nflip < 3 {
			nflip = 3
		}
		if nflip > v.WeightFilePages() {
			nflip = v.WeightFilePages()
		}
	}
	acfg := core.DefaultConfig(nflip, cfg.TargetClass)
	acfg.Iterations = orInt(cfg.Iterations, 100)
	acfg.BitReduceEvery = acfg.Iterations / 2
	if acfg.BitReduceEvery < 1 {
		acfg.BitReduceEvery = 1
	}
	acfg.Eta = 2
	acfg.Epsilon = orF32(cfg.Epsilon, 0.02)
	if cfg.Alpha != 0 {
		acfg.Alpha = cfg.Alpha
	}
	if cfg.TriggerSize != 0 {
		acfg.TriggerSize = cfg.TriggerSize
	}
	attackSet := v.result.Test.Head(32)
	out, err := core.RunOffline(model, attackSet, acfg)
	if err != nil {
		return nil, err
	}
	return &Offline{
		inner:   out,
		model:   &modelHandle{victim: v},
		target:  cfg.TargetClass,
		NFlip:   out.NFlip,
		Trigger: out.Trigger,
	}, nil
}

// OfflineMetrics evaluates the backdoored model (as the attacker sees
// it offline): test accuracy and attack success rate. The evaluation
// runs on the int8 engine — the deployment form whose codes the attack
// actually flips — with batches fanned out across the worker pool.
func (o *Offline) OfflineMetrics() (ta, asr float64) {
	m := quant.NewQModel(o.inner.Quantizer)
	test := o.model.victim.result.Test
	return metrics.TestAccuracy(m, test), metrics.AttackSuccessRate(m, test, o.inner.Trigger, o.target)
}

// HardwareConfig selects the simulated DRAM system the online phase
// runs on.
type HardwareConfig struct {
	// Device is a Table I chip name ("A1" … "N1") or empty for the
	// paper's DDR3 module.
	Device string
	// ModuleMB is the DRAM size; 0 picks 192 MB (room for the paper's
	// 128 MB templating buffer).
	ModuleMB int
	// Sides is the hammer pattern width; 0 picks 2 (double-sided, the
	// DDR3 configuration) — use 7 for DDR4 devices.
	Sides int
	// Seed fixes the vulnerable-cell layout and measurement noise.
	Seed int64

	// Robustness knobs (all zero = the deterministic single-shot
	// engine, byte-identical to previous releases).

	// Rounds is the verify/re-hammer round budget (≤1 = single shot).
	Rounds int
	// Escalation multiplies the re-hammer activation budget each retry
	// round (0 or 1 = none); budget above 1.0 spills into additional
	// full-intensity hammer passes per pending row.
	Escalation float64
	// RetemplatePasses bounds adaptive buffer growth / re-sweeps when
	// the placement leaves requirements unmatched.
	RetemplatePasses int
	// FlipFailProb is the per-pass probability that a weak cell fails
	// to fire despite sufficient disturbance (fault injection).
	FlipFailProb float64
	// TRRJitter scales a per-pass uniform perturbation of the
	// disturbance level, modeling TRR-escape variability.
	TRRJitter float64
	// FaultSeed seeds the deterministic fault streams; 0 picks 1 when
	// any fault knob is set.
	FaultSeed int64
}

// AttackRound mirrors one verify/re-hammer round of the robust engine.
type AttackRound struct {
	Round        int
	RowsHammered int
	// NMatch is the cumulative count of required flips verified fired
	// after this round; Missing is what still has not.
	NMatch  int
	Missing int
}

// Online is the outcome of the hammering phase.
type Online struct {
	inner *core.OnlineResult
	// RMatch is the DRAM match rate (percent).
	RMatch float64
	// NFlipOnline counts the bits that actually flipped.
	NFlipOnline int
	// Matched / Required report how much of the plan landed.
	Matched  int
	Required int
	// Accidental counts extra flips in disturbed pages.
	Accidental int
	// Unmatched counts requirements the planner could not place on any
	// flippy page even after re-templating.
	Unmatched int
	// Retemplated counts adaptive re-templating passes taken.
	Retemplated int
	// Rounds reports the verify/re-hammer progress, one entry per
	// executed hammer round.
	Rounds []AttackRound
}

// resolveDevice maps the config's device name to its Table I profile.
func (hw HardwareConfig) resolveDevice() (dram.DeviceProfile, error) {
	if hw.Device == "" {
		return dram.PaperDDR3(), nil
	}
	p, ok := dram.ProfileByName(hw.Device)
	if !ok {
		return dram.DeviceProfile{}, fmt.Errorf("rowhammer: unknown device %q", hw.Device)
	}
	return p, nil
}

// faultModel builds the config's fault model (zero value when no fault
// knob is set).
func (hw HardwareConfig) faultModel() dram.FaultModel {
	if hw.FlipFailProb <= 0 && hw.TRRJitter <= 0 {
		return dram.FaultModel{}
	}
	return dram.FaultModel{
		FlipFailProb: hw.FlipFailProb,
		TRRJitter:    hw.TRRJitter,
		Seed:         orI64(hw.FaultSeed, 1),
	}
}

// onlineConfig resolves the config into the online engine's terms for a
// weight file of filePages pages.
func (hw HardwareConfig) onlineConfig(filePages int) core.OnlineConfig {
	ocfg := core.DefaultOnlineConfig(filePages)
	if hw.Sides != 0 {
		ocfg.Sides = hw.Sides
	}
	ocfg.MeasureSeed = orI64(hw.Seed, 7)
	ocfg.Rounds = hw.Rounds
	ocfg.Escalation = hw.Escalation
	ocfg.RetemplatePasses = hw.RetemplatePasses
	return ocfg
}

// victimWeightFile quantizes a fresh clone of the victim into its
// deployed weight-file bytes.
func victimWeightFile(v *Victim) ([]byte, error) {
	clean, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	return quant.NewQuantizer(clean).WeightFileBytes(), nil
}

// wrapOnline lifts the internal online result into the public shape.
func wrapOnline(res *core.OnlineResult) *Online {
	on := &Online{
		inner:       res,
		RMatch:      res.RMatch,
		NFlipOnline: res.NFlipOnline,
		Matched:     res.NMatch,
		Required:    res.NRequired,
		Accidental:  res.AccidentalFlips,
		Unmatched:   res.Unmatched,
		Retemplated: len(res.Report.Retemplates),
	}
	for _, r := range res.Report.Rounds {
		on.Rounds = append(on.Rounds, AttackRound{
			Round:        r.Round,
			RowsHammered: r.RowsHammered,
			NMatch:       r.NMatch,
			Missing:      r.Missing,
		})
	}
	return on
}

// HammerOnline executes the online phase: profile, plan, massage, let
// the victim map its weight file, hammer, and read back the corrupted
// file.
func HammerOnline(v *Victim, off *Offline, hw HardwareConfig) (*Online, error) {
	profileDev, err := hw.resolveDevice()
	if err != nil {
		return nil, err
	}
	moduleMB := orInt(hw.ModuleMB, 192)
	mod, err := dram.NewModuleForSize(moduleMB<<20, profileDev, orI64(hw.Seed, 7))
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	if f := hw.faultModel(); f != (dram.FaultModel{}) {
		sys.InjectFaults(f)
	}

	cleanFile, err := victimWeightFile(v)
	if err != nil {
		return nil, err
	}
	reqs := core.RequirementsFromCodes(off.inner.OrigCodes, off.inner.BackdooredCodes)
	res, err := core.ExecuteOnline(sys, cleanFile, reqs, hw.onlineConfig(len(cleanFile)/memsys.PageSize))
	if err != nil {
		return nil, err
	}
	return wrapOnline(res), nil
}

// Report is the end-to-end evaluation of the attack.
type Report struct {
	CleanAccuracy float64
	OfflineTA     float64
	OfflineASR    float64
	OnlineTA      float64
	OnlineASR     float64
	NFlipOffline  int
	NFlipOnline   int
	RMatch        float64
}

// Evaluate loads the corrupted weight file into a fresh victim instance
// and measures the deployed backdoor.
func Evaluate(v *Victim, off *Offline, on *Online) (*Report, error) {
	offTA, offASR := off.OfflineMetrics()
	rep := &Report{
		CleanAccuracy: v.CleanAccuracy(),
		OfflineTA:     offTA,
		OfflineASR:    offASR,
		NFlipOffline:  off.NFlip,
		NFlipOnline:   on.NFlipOnline,
		RMatch:        on.RMatch,
	}
	victimModel, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	qv := quant.NewQuantizer(victimModel)
	qv.LoadWeightFileBytes(on.inner.CorruptedFile)
	// The victim serves the corrupted file through the int8 engine —
	// exactly what deployment-form quantized inference would run.
	qm := quant.NewQModel(qv)
	test := v.result.Test
	rep.OnlineTA = metrics.TestAccuracy(qm, test)
	rep.OnlineASR = metrics.AttackSuccessRate(qm, test, off.Trigger, off.target)
	return rep, nil
}

func orInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func orF32(v, def float32) float32 {
	if v == 0 {
		return def
	}
	return v
}

func orI64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}
