package rowhammer

import (
	"fmt"

	"rowhammer/internal/core"
	"rowhammer/internal/data"
	"rowhammer/internal/dram"
	"rowhammer/internal/memsys"
	"rowhammer/internal/metrics"
	"rowhammer/internal/models"
	"rowhammer/internal/pretrain"
	"rowhammer/internal/quant"
	"rowhammer/internal/serve"
)

// Trigger is the backdoor input pattern Δx (a square patch whose pixels
// the attack optimizes).
type Trigger = data.Trigger

// Victim bundles a trained clean model with its data splits — the
// deployment the attacker targets.
type Victim struct {
	result *pretrain.Result
	cfg    models.Config
	dcfg   data.SynthConfig
	epochs int
	seed   int64
}

// VictimConfig selects the victim model and training scale.
type VictimConfig struct {
	// Arch is one of the supported architectures: resnet20, resnet32,
	// resnet18, resnet34, resnet50, vgg11, vgg16, bin-resnet32.
	Arch string
	// Classes is the task size; 0 picks the architecture's default
	// (10, or 100 for the ImageNet-scale ResNets).
	Classes int
	// WidthMult scales channel counts; 0 means 0.25 (laptop friendly).
	WidthMult float64
	// TrainSamples/TestSamples/Epochs size the synthetic pretraining;
	// zero values pick quick defaults.
	TrainSamples int
	TestSamples  int
	Epochs       int
	// Seed fixes all randomness.
	Seed int64
}

// TrainVictim trains (and caches per identical config) a clean victim
// model on the built-in synthetic task.
func TrainVictim(cfg VictimConfig) (*Victim, error) {
	if cfg.Arch == "" {
		cfg.Arch = "resnet20"
	}
	if cfg.WidthMult == 0 {
		cfg.WidthMult = 0.25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	classes := cfg.Classes
	dcfg := data.SynthCIFAR(0, cfg.Seed)
	if classes == 0 {
		classes = 10
		if cfg.Arch == "resnet34" || cfg.Arch == "resnet50" {
			classes = 100
			dcfg = data.SynthImageNet(0, cfg.Seed)
		}
	}
	mcfg := models.Config{Arch: cfg.Arch, Classes: classes, WidthMult: cfg.WidthMult, Seed: cfg.Seed}
	res, err := pretrain.TrainCached(pretrain.Config{
		Model:        mcfg,
		Data:         dcfg,
		TrainSamples: cfg.TrainSamples,
		TestSamples:  cfg.TestSamples,
		Epochs:       cfg.Epochs,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Victim{result: res, cfg: mcfg, dcfg: dcfg, epochs: cfg.Epochs, seed: cfg.Seed}, nil
}

// CleanAccuracy returns the victim's clean test accuracy.
func (v *Victim) CleanAccuracy() float64 { return v.result.Accuracy }

// NumParams returns the victim's parameter count (one byte each when
// deployed 8-bit quantized).
func (v *Victim) NumParams() int { return v.result.Model.NumParams() }

// WeightFilePages returns how many 4 KB pages the deployed weight file
// occupies — the hard ceiling on the attack's flip budget.
func (v *Victim) WeightFilePages() int {
	return (v.NumParams() + quant.PageSize - 1) / quant.PageSize
}

// AttackConfig drives the offline phase (Algorithm 1).
type AttackConfig struct {
	// TargetClass is the backdoor's target label.
	TargetClass int
	// NFlip is the bit-flip budget; 0 picks pages/7 (≥3).
	NFlip int
	// Iterations is the optimization length; 0 picks 100.
	Iterations int
	// Alpha blends clean (1−α) and triggered (α) losses; 0 picks 0.5.
	Alpha float32
	// Epsilon is the FGSM trigger step; 0 picks 0.02.
	Epsilon float32
	// TriggerSize is the square trigger edge; 0 picks 10.
	TriggerSize int
}

// Offline is the offline-phase product: the backdoored weight file and
// the learned trigger.
type Offline struct {
	inner   *core.Result
	model   *modelHandle
	target  int
	NFlip   int
	Trigger *Trigger
}

type modelHandle struct {
	victim *Victim
}

// InjectBackdoor runs Algorithm 1 (CFT+BR) against a fresh clone of the
// victim and returns the flip set and trigger.
func InjectBackdoor(v *Victim, cfg AttackConfig) (*Offline, error) {
	model, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	nflip := cfg.NFlip
	if nflip == 0 {
		nflip = v.WeightFilePages() / 7
		if nflip < 3 {
			nflip = 3
		}
		if nflip > v.WeightFilePages() {
			nflip = v.WeightFilePages()
		}
	}
	acfg := core.DefaultConfig(nflip, cfg.TargetClass)
	acfg.Iterations = orInt(cfg.Iterations, 100)
	acfg.BitReduceEvery = acfg.Iterations / 2
	if acfg.BitReduceEvery < 1 {
		acfg.BitReduceEvery = 1
	}
	acfg.Eta = 2
	acfg.Epsilon = orF32(cfg.Epsilon, 0.02)
	if cfg.Alpha != 0 {
		acfg.Alpha = cfg.Alpha
	}
	if cfg.TriggerSize != 0 {
		acfg.TriggerSize = cfg.TriggerSize
	}
	attackSet := v.result.Test.Head(32)
	out, err := core.RunOffline(model, attackSet, acfg)
	if err != nil {
		return nil, err
	}
	return &Offline{
		inner:   out,
		model:   &modelHandle{victim: v},
		target:  cfg.TargetClass,
		NFlip:   out.NFlip,
		Trigger: out.Trigger,
	}, nil
}

// OfflineMetrics evaluates the backdoored model (as the attacker sees
// it offline): test accuracy and attack success rate. The evaluation
// runs on the int8 engine — the deployment form whose codes the attack
// actually flips — with batches fanned out across the worker pool.
func (o *Offline) OfflineMetrics() (ta, asr float64) {
	ev := metrics.NewEvaluator(quant.NewQModel(o.inner.Quantizer))
	test := o.model.victim.result.Test
	return ev.TestAccuracy(test), ev.AttackSuccessRate(test, o.inner.Trigger, o.target)
}

// HardwareConfig selects the simulated DRAM system the online phase
// runs on.
type HardwareConfig struct {
	// Device is a Table I chip name ("A1" … "N1") or empty for the
	// paper's DDR3 module.
	Device string
	// ModuleMB is the DRAM size; 0 picks 192 MB (room for the paper's
	// 128 MB templating buffer).
	ModuleMB int
	// Sides is the hammer pattern width; 0 picks 2 (double-sided, the
	// DDR3 configuration) — use 7 for DDR4 devices.
	Sides int
	// Seed fixes the vulnerable-cell layout and measurement noise.
	Seed int64

	// Robustness knobs (all zero = the deterministic single-shot
	// engine, byte-identical to previous releases).

	// Rounds is the verify/re-hammer round budget (≤1 = single shot).
	Rounds int
	// Escalation multiplies the re-hammer activation budget each retry
	// round (0 or 1 = none); budget above 1.0 spills into additional
	// full-intensity hammer passes per pending row.
	Escalation float64
	// RetemplatePasses bounds adaptive buffer growth / re-sweeps when
	// the placement leaves requirements unmatched.
	RetemplatePasses int
	// FlipFailProb is the per-pass probability that a weak cell fails
	// to fire despite sufficient disturbance (fault injection).
	FlipFailProb float64
	// TRRJitter scales a per-pass uniform perturbation of the
	// disturbance level, modeling TRR-escape variability.
	TRRJitter float64
	// FaultSeed seeds the deterministic fault streams; 0 picks 1 when
	// any fault knob is set.
	FaultSeed int64
}

// AttackRound mirrors one verify/re-hammer round of the robust engine.
type AttackRound struct {
	Round        int
	RowsHammered int
	// NMatch is the cumulative count of required flips verified fired
	// after this round; Missing is what still has not.
	NMatch  int
	Missing int
}

// Online is the outcome of the hammering phase.
type Online struct {
	inner *core.OnlineResult
	// RMatch is the DRAM match rate (percent).
	RMatch float64
	// NFlipOnline counts the bits that actually flipped.
	NFlipOnline int
	// Matched / Required report how much of the plan landed.
	Matched  int
	Required int
	// Accidental counts extra flips in disturbed pages.
	Accidental int
	// Unmatched counts requirements the planner could not place on any
	// flippy page even after re-templating.
	Unmatched int
	// Retemplated counts adaptive re-templating passes taken.
	Retemplated int
	// Rounds reports the verify/re-hammer progress, one entry per
	// executed hammer round.
	Rounds []AttackRound
}

// resolveDevice maps the config's device name to its Table I profile.
func (hw HardwareConfig) resolveDevice() (dram.DeviceProfile, error) {
	if hw.Device == "" {
		return dram.PaperDDR3(), nil
	}
	p, ok := dram.ProfileByName(hw.Device)
	if !ok {
		return dram.DeviceProfile{}, fmt.Errorf("rowhammer: unknown device %q", hw.Device)
	}
	return p, nil
}

// faultModel builds the config's fault model (zero value when no fault
// knob is set).
func (hw HardwareConfig) faultModel() dram.FaultModel {
	if hw.FlipFailProb <= 0 && hw.TRRJitter <= 0 {
		return dram.FaultModel{}
	}
	return dram.FaultModel{
		FlipFailProb: hw.FlipFailProb,
		TRRJitter:    hw.TRRJitter,
		Seed:         orI64(hw.FaultSeed, 1),
	}
}

// onlineConfig resolves the config into the online engine's terms for a
// weight file of filePages pages.
func (hw HardwareConfig) onlineConfig(filePages int) core.OnlineConfig {
	ocfg := core.DefaultOnlineConfig(filePages)
	if hw.Sides != 0 {
		ocfg.Sides = hw.Sides
	}
	ocfg.MeasureSeed = orI64(hw.Seed, 7)
	ocfg.Rounds = hw.Rounds
	ocfg.Escalation = hw.Escalation
	ocfg.RetemplatePasses = hw.RetemplatePasses
	return ocfg
}

// victimWeightFile quantizes a fresh clone of the victim into its
// deployed weight-file bytes.
func victimWeightFile(v *Victim) ([]byte, error) {
	clean, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	return quant.NewQuantizer(clean).WeightFileBytes(), nil
}

// wrapOnline lifts the internal online result into the public shape.
func wrapOnline(res *core.OnlineResult) *Online {
	on := &Online{
		inner:       res,
		RMatch:      res.RMatch,
		NFlipOnline: res.NFlipOnline,
		Matched:     res.NMatch,
		Required:    res.NRequired,
		Accidental:  res.AccidentalFlips,
		Unmatched:   res.Unmatched,
		Retemplated: len(res.Report.Retemplates),
	}
	for _, r := range res.Report.Rounds {
		on.Rounds = append(on.Rounds, AttackRound{
			Round:        r.Round,
			RowsHammered: r.RowsHammered,
			NMatch:       r.NMatch,
			Missing:      r.Missing,
		})
	}
	return on
}

// HammerOnline executes the online phase: profile, plan, massage, let
// the victim map its weight file, hammer, and read back the corrupted
// file.
func HammerOnline(v *Victim, off *Offline, hw HardwareConfig) (*Online, error) {
	profileDev, err := hw.resolveDevice()
	if err != nil {
		return nil, err
	}
	moduleMB := orInt(hw.ModuleMB, 192)
	mod, err := dram.NewModuleForSize(moduleMB<<20, profileDev, orI64(hw.Seed, 7))
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	if f := hw.faultModel(); f != (dram.FaultModel{}) {
		sys.InjectFaults(f)
	}

	cleanFile, err := victimWeightFile(v)
	if err != nil {
		return nil, err
	}
	reqs := core.RequirementsFromCodes(off.inner.OrigCodes, off.inner.BackdooredCodes)
	res, err := core.ExecuteOnline(sys, cleanFile, reqs, hw.onlineConfig(len(cleanFile)/memsys.PageSize))
	if err != nil {
		return nil, err
	}
	return wrapOnline(res), nil
}

// Report is the end-to-end evaluation of the attack.
type Report struct {
	CleanAccuracy float64
	OfflineTA     float64
	OfflineASR    float64
	OnlineTA      float64
	OnlineASR     float64
	NFlipOffline  int
	NFlipOnline   int
	RMatch        float64
}

// Evaluate loads the corrupted weight file into a fresh victim instance
// and measures the deployed backdoor.
func Evaluate(v *Victim, off *Offline, on *Online) (*Report, error) {
	offTA, offASR := off.OfflineMetrics()
	rep := &Report{
		CleanAccuracy: v.CleanAccuracy(),
		OfflineTA:     offTA,
		OfflineASR:    offASR,
		NFlipOffline:  off.NFlip,
		NFlipOnline:   on.NFlipOnline,
		RMatch:        on.RMatch,
	}
	victimModel, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	qv := quant.NewQuantizer(victimModel)
	qv.LoadWeightFileBytes(on.inner.CorruptedFile)
	// The victim serves the corrupted file through the int8 engine —
	// exactly what deployment-form quantized inference would run. The
	// evaluator probes the engine's concurrency contract once and reuses
	// the decision for both metrics.
	ev := metrics.NewEvaluator(quant.NewQModel(qv))
	test := v.result.Test
	rep.OnlineTA = ev.TestAccuracy(test)
	rep.OnlineASR = ev.AttackSuccessRate(test, off.Trigger, off.target)
	return rep, nil
}

// ServeOptions configures the victim-under-fire run: the live serving
// scenario where the online attack hammers weights while the victim
// answers queries and DeepDyve watches for disagreement.
type ServeOptions struct {
	// Workers is the server's executor count (default 1).
	Workers int
	// BatchMax is the micro-batch size cap (default 32).
	BatchMax int
	// ReplayQueries is the detector replay volume per measurement
	// window (default 256).
	ReplayQueries int
	// TriggerFraction is the share of replay queries carrying the
	// trigger (default 0.5).
	TriggerFraction float64
	// LiveClients drives that many real blocking request loops through
	// the server for wall-clock stats (default 0 = off).
	LiveClients int
	// Seed fixes the replay and simulated-arrival streams (default:
	// the hardware seed).
	Seed int64
	// CheckerSeed seeds the DeepDyve checker's training (default:
	// victim seed + 1000). The checker is a resnet20 trained on the
	// victim's task, served int8 like the victim.
	CheckerSeed int64
}

// ServeWindow is one window of the attack-under-load timeline: window 0
// is the intact victim, window k the state after hammer round k.
type ServeWindow struct {
	Window, Round int
	// FlipsApplied is the cumulative bit distance from the clean
	// deployment; EpochSeq the engine snapshot serving at the time.
	FlipsApplied int
	EpochSeq     uint64
	// TA/ASR are the victim's live accuracy and attack success rate.
	TA, ASR float64
	// AlarmRate is DeepDyve's disagreement rate over the window's
	// replay stream.
	AlarmRate float64
	// SimQPS/SimP50Ns/SimP99Ns/SimShed are the window's deterministic
	// virtual-time service quality.
	SimQPS             float64
	SimP50Ns, SimP99Ns int64
	SimShed            int
}

// ServeTimeline is the full victim-under-fire result: the online attack
// outcome plus the interleaved serving/detection trajectory.
type ServeTimeline struct {
	// Online is the attack outcome, as HammerOnline reports it.
	Online *Online
	// Windows is the deterministic timeline (fixed seed, any worker
	// count).
	Windows           []ServeWindow
	BaselineAlarmRate float64
	Detected          bool
	// DetectionWindow / DetectionLagQueries locate detection on the
	// timeline (-1 when the replay stream never alarmed above
	// baseline).
	DetectionWindow     int
	DetectionLagQueries int
	// LiveQPS/LiveServed/LiveShed/LiveMeanBatch are wall-clock traffic
	// numbers when LiveClients > 0 (not deterministic, not part of the
	// report contract).
	LiveQPS       float64
	LiveServed    int64
	LiveShed      int64
	LiveMeanBatch float64
}

// ServeUnderFire runs the online attack against a victim that keeps
// serving: the weight file is hammered round by round, each round's
// partially corrupted file is hot-swapped into the live int8 engine
// through the torn-read-safe epoch path, and every swap closes a
// measurement window recording live TA/ASR, the DeepDyve alarm rate
// over a deterministic replay stream, and simulated service quality.
func ServeUnderFire(v *Victim, off *Offline, hw HardwareConfig, opts ServeOptions) (*ServeTimeline, error) {
	profileDev, err := hw.resolveDevice()
	if err != nil {
		return nil, err
	}
	moduleMB := orInt(hw.ModuleMB, 192)
	mod, err := dram.NewModuleForSize(moduleMB<<20, profileDev, orI64(hw.Seed, 7))
	if err != nil {
		return nil, err
	}
	sys := memsys.NewSystem(mod)
	if f := hw.faultModel(); f != (dram.FaultModel{}) {
		sys.InjectFaults(f)
	}
	cleanFile, err := victimWeightFile(v)
	if err != nil {
		return nil, err
	}

	// The serving victim: a fresh clone quantized to the clean
	// deployment, served through the int8 epoch engine.
	servingModel, err := pretrain.CloneModel(v.cfg, v.result.Model)
	if err != nil {
		return nil, err
	}
	engine := quant.NewQModel(quant.NewQuantizer(servingModel))

	// The DeepDyve checker: a small model trained on the same task with
	// a different seed, served int8 so the whole protocol runs on
	// concurrency-safe engines.
	checkerRes, err := pretrain.TrainCached(pretrain.Config{
		Model: models.Config{Arch: "resnet20", Classes: v.cfg.Classes,
			WidthMult: 0.25, Seed: orI64(opts.CheckerSeed, v.seed+1000)},
		Data:   v.dcfg,
		Epochs: v.epochs,
		Seed:   orI64(opts.CheckerSeed, v.seed+1000),
	})
	if err != nil {
		return nil, fmt.Errorf("rowhammer: training checker: %w", err)
	}
	checkerModel, err := pretrain.CloneModel(
		models.Config{Arch: "resnet20", Classes: v.cfg.Classes, WidthMult: 0.25,
			Seed: orI64(opts.CheckerSeed, v.seed+1000)}, checkerRes.Model)
	if err != nil {
		return nil, err
	}
	checker := quant.NewQModel(quant.NewQuantizer(checkerModel))

	fire := serve.Fire{
		Engine:  engine,
		Checker: checker,
		Eval:    v.result.Test,
		Trigger: off.Trigger,
		Target:  off.target,
		Serve: serve.Config{
			BatchMax: orInt(opts.BatchMax, 32),
			Workers:  orInt(opts.Workers, 1),
		},
		Cfg: serve.FireConfig{
			Seed:            orI64(opts.Seed, orI64(hw.Seed, 7)),
			ReplayQueries:   opts.ReplayQueries,
			TriggerFraction: opts.TriggerFraction,
			LiveClients:     opts.LiveClients,
		},
	}

	reqs := core.RequirementsFromCodes(off.inner.OrigCodes, off.inner.BackdooredCodes)
	var onres *core.OnlineResult
	rep, live, err := serve.RunUnderFire(fire, func(apply func(round int, mapped []byte)) error {
		ocfg := hw.onlineConfig(len(cleanFile) / memsys.PageSize)
		ocfg.AfterRound = apply
		var aerr error
		onres, aerr = core.ExecuteOnline(sys, cleanFile, reqs, ocfg)
		return aerr
	})
	if err != nil {
		return nil, err
	}

	tl := &ServeTimeline{
		Online:              wrapOnline(onres),
		BaselineAlarmRate:   rep.BaselineAlarmRate,
		Detected:            rep.Detected,
		DetectionWindow:     rep.DetectionWindow,
		DetectionLagQueries: rep.DetectionLagQueries,
		LiveQPS:             live.QPS,
		LiveServed:          live.Served,
		LiveShed:            live.Shed,
		LiveMeanBatch:       live.MeanBatch,
	}
	for _, w := range rep.Windows {
		tl.Windows = append(tl.Windows, ServeWindow{
			Window: w.Window, Round: w.Round,
			FlipsApplied: w.FlipsApplied, EpochSeq: w.EpochSeq,
			TA: w.TA, ASR: w.ASR, AlarmRate: w.AlarmRate,
			SimQPS: w.SimQPS, SimP50Ns: w.SimP50Ns, SimP99Ns: w.SimP99Ns,
			SimShed: w.SimShed,
		})
	}
	return tl, nil
}

func orInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func orF32(v, def float32) float32 {
	if v == 0 {
		return def
	}
	return v
}

func orI64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}
