// Package rowhammer is a from-scratch Go reproduction of "Don't Knock!
// Rowhammer at the Backdoor of DNN Models" (DSN 2023): an end-to-end
// backdoor-injection attack on deployed, 8-bit-quantized DNN models
// that flips a handful of weight bits in DRAM via Rowhammer.
//
// The package exposes the full pipeline:
//
//  1. Train a victim classifier on a built-in synthetic task
//     (TrainVictim) or bring your own model via the internal engine.
//  2. Run the offline phase (InjectBackdoor): Algorithm 1 — joint
//     trigger learning (FGSM), one-weight-per-page selection
//     (Group_Sort_Select) and Bit Reduction — producing a set of
//     single-bit flips and a trigger pattern.
//  3. Run the online phase (HammerOnline) against a simulated DRAM
//     system: SPOILER/row-conflict templating, Listing-1 page-cache
//     massaging, and n-sided hammering of the victim's mapped weight
//     file.
//  4. Evaluate stealth and attack success (Evaluate).
//
// Everything the paper's evaluation needs — the DRAM cell simulator,
// the OS memory subsystem, the side channels, the baselines
// (BadNet/FT/TBT) and the §VI countermeasures — lives in the internal
// packages and is driven by cmd/experiments and the benchmarks in
// bench_test.go.
//
// The quick start:
//
//	victim, _ := rowhammer.TrainVictim(rowhammer.VictimConfig{Arch: "resnet20"})
//	offline, _ := rowhammer.InjectBackdoor(victim, rowhammer.AttackConfig{TargetClass: 2})
//	online, _ := rowhammer.HammerOnline(victim, offline, rowhammer.HardwareConfig{})
//	report := rowhammer.Evaluate(victim, offline, online)
package rowhammer
