package rowhammer

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the corresponding artifact via the drivers in
// internal/experiments and reports the headline quantity as a custom
// metric, so `go test -bench . -benchtime 1x` reproduces the whole
// evaluation. The attack benchmarks run at QuickScale (width-0.25
// models, short optimization) — pass -tags none and edit the scale in
// internal/experiments for paper-scale runs (see EXPERIMENTS.md).

import (
	"testing"

	"rowhammer/internal/experiments"
)

func benchScale() experiments.Scale { return experiments.QuickScale() }

// BenchmarkTable1_FlipsPerPage regenerates Table I: average flips per
// page over the 20 device profiles.
func BenchmarkTable1_FlipsPerPage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(256, 5)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.MeasuredFlipsPerPage
		}
		b.ReportMetric(sum/float64(len(rows)), "avg-flips/page")
	}
}

// BenchmarkTable2_ResNet20 regenerates the Table II row block for
// ResNet-20: all five methods, offline and online.
func BenchmarkTable2_ResNet20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchScale(), []string{"resnet20"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Log(r.String())
			if r.Method == experiments.MethodCFTBR {
				b.ReportMetric(r.RMatch, "cftbr-rmatch-%")
				b.ReportMetric(100*r.Online.ASR, "cftbr-online-asr-%")
			}
		}
	}
}

// BenchmarkTable3_VGG regenerates Table III: CFT+BR on VGG-11/16.
func BenchmarkTable3_VGG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchScale(), []string{"vgg11"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%s: base %.3f TA %.3f ASR %.3f NFlip %d", r.Arch, r.BaseAcc, r.TA, r.ASR, r.NFlip)
			b.ReportMetric(100*r.ASR, "asr-%")
		}
	}
}

// BenchmarkTable4_Restore regenerates Table IV: BadNet under parameter
// restoration.
func BenchmarkTable4_Restore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("keep %3d%%: TA %.3f ASR %.3f", r.ModificationPercent, r.TA, r.ASR)
		}
		b.ReportMetric(100*rows[len(rows)-1].ASR, "asr-at-50%-kept-%")
	}
}

// BenchmarkFigure2_Sparsity regenerates the flip-sparsity statistics.
func BenchmarkFigure2_Sparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure2(512, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.VulnerableRatio, "vulnerable-cells-%")
	}
}

// BenchmarkFigure4_Massaging regenerates the release-order mapping.
func BenchmarkFigure4_Massaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure4(64, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(points)), "mapped-pages")
	}
}

// BenchmarkFigure5_NSided regenerates the aggressor-count sweep.
func BenchmarkFigure5_NSided(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure5(2048, 15, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.Logf("%2d-sided: %.2f flips/page", p.Sides, p.AvgFlipsPerPage)
		}
		b.ReportMetric(points[len(points)-1].AvgFlipsPerPage, "flips/page@15")
	}
}

// BenchmarkFigure6_Aggressors regenerates the 15- vs 7-sided
// comparison.
func BenchmarkFigure6_Aggressors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure6(2048, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Avg15, "flips/page@15")
		b.ReportMetric(rep.Avg7, "flips/page@7")
	}
}

// BenchmarkFigure7_LossCurve regenerates the CFT+BR loss trajectory.
func BenchmarkFigure7_LossCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure7(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.SpikeRatio, "post-BR-spike-ratio")
	}
}

// BenchmarkFigure8_GradCAM regenerates the attention-shift comparison.
func BenchmarkFigure8_GradCAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure8(benchScale(), "resnet20", 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.CleanFocus, "clean-trigger-focus")
		b.ReportMetric(rep.BackdooredFocus, "backdoored-trigger-focus")
	}
}

// BenchmarkFigure9_Probability regenerates the Eq. 2 curves for chip
// K1.
func BenchmarkFigure9_Probability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Figure9()
		b.ReportMetric(series[0].Prob[5], "p@2200pages-1bit")
	}
}

// BenchmarkFigure10_PerChip regenerates the per-chip Eq. 2 curves.
func BenchmarkFigure10_PerChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Figure10()
		b.ReportMetric(float64(len(series)), "chips")
	}
}

// BenchmarkFigure11_Spoiler regenerates the SPOILER timing sweep.
func BenchmarkFigure11_Spoiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure11(1024, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.Runs)), "contiguous-runs")
	}
}

// BenchmarkFigure12_RowConflict regenerates the bank-conflict timing
// distribution.
func BenchmarkFigure12_RowConflict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure12(400, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.ConflictFrac, "conflict-%")
		b.ReportMetric(rep.MeanConflict, "conflict-cycles")
	}
}

// BenchmarkFigure13_FlipSpread regenerates the CFT+BR vs TBT flip
// locality comparison.
func BenchmarkFigure13_FlipSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure13(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.CFTBRSpread, "cftbr-spread")
		b.ReportMetric(rep.TBTSpread, "tbt-spread")
	}
}

// BenchmarkDefense_Binarization regenerates the §VI-A binarization
// result.
func BenchmarkDefense_Binarization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DefenseBinarization(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.NFlipBudget), "nflip-budget")
		b.ReportMetric(100*rep.AttackASR, "asr-%")
	}
}

// BenchmarkDefense_PWC regenerates the §VI-A clustering result.
func BenchmarkDefense_PWC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DefensePWC(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.AttackASR, "asr-%")
		b.ReportMetric(rep.ClusterAfter/rep.ClusterBefore, "cluster-ratio")
	}
}

// BenchmarkDefense_DeepDyve regenerates the §VI-B DeepDyve result.
func BenchmarkDefense_DeepDyve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DefenseDeepDyve(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.ASRDespiteDefense, "asr-despite-defense-%")
		b.ReportMetric(100*rep.RecoveredRate, "recovered-%")
	}
}

// BenchmarkDefense_Encoding regenerates the §VI-B weight-encoding
// overhead analysis.
func BenchmarkDefense_Encoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DefenseEncoding(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.ExtrapolatedVerify.Seconds(), "resnet34-verify-s")
		b.ReportMetric(100*rep.StorageRatio, "storage-overhead-%")
	}
}

// BenchmarkDefense_RADAR regenerates the §VI-B RADAR result.
func BenchmarkDefense_RADAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DefenseRADAR(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		detected := 0.0
		if rep.AdaptiveDetected {
			detected = 1
		}
		b.ReportMetric(detected, "adaptive-detected")
		b.ReportMetric(100*rep.AdaptiveASR, "adaptive-asr-%")
	}
}

// BenchmarkDefense_Reconstruction regenerates the §VI-C weight
// reconstruction result.
func BenchmarkDefense_Reconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DefenseReconstruction(benchScale(), "resnet20")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep.AfterReconASR, "unaware-asr-after-recon-%")
		b.ReportMetric(100*rep.AdaptiveASR, "adaptive-asr-after-recon-%")
	}
}

// BenchmarkAppendixF_Plundervolt regenerates the negative result.
func BenchmarkAppendixF_Plundervolt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Plundervolt(11)
		b.ReportMetric(float64(rep.PoCLoopFaults), "poc-faults")
		b.ReportMetric(float64(rep.QuantizedMACFaults), "quantized-faults")
	}
}
