package rowhammer

import (
	"encoding/json"
	"fmt"
	"net/http"

	"rowhammer/internal/campaign"
	"rowhammer/internal/campaign/server"
	"rowhammer/internal/core"
	"rowhammer/internal/memsys"
)

// FleetModule is one deployment in a fleet sweep: a simulated DRAM
// system to run the online attack against.
type FleetModule struct {
	// Name labels the campaign in reports; empty picks the device name.
	Name string
	// Hardware selects the module and online configuration, exactly as
	// HammerOnline interprets it.
	Hardware HardwareConfig
}

// FleetConfig controls the fleet campaign engine.
type FleetConfig struct {
	// Workers bounds concurrently executing campaigns (0 = 1).
	Workers int
	// MaxArenaMB caps the estimated in-flight DRAM simulation state; 0
	// removes the cap.
	MaxArenaMB int
	// OnReport, when set, streams each campaign's report as it
	// finishes (completion order). Calls are serialized.
	OnReport func(FleetReport)
}

// FleetReport is one campaign's outcome within a fleet.
type FleetReport struct {
	// Index is the campaign's position in the submitted module list.
	Index int
	// Name labels the campaign.
	Name string
	// SKU is the module's device/capacity class.
	SKU string
	// CacheHit reports whether the campaign reused another campaign's
	// flip template instead of re-templating (identical hardware
	// identity). Deterministic: derived from submission order.
	CacheHit bool
	// Online is the attack outcome (nil when Err is set); pass it to
	// Evaluate to measure the deployed backdoor on this module.
	Online *Online
	// Err is this campaign's failure; other campaigns are unaffected.
	Err error
}

// FleetSummary aggregates a fleet sweep.
type FleetSummary struct {
	// Reports holds every campaign in submission order.
	Reports []FleetReport
	// Failed counts campaigns with Err set.
	Failed int
	// CacheHits counts campaigns that reused a cached template.
	CacheHits int
	// MeanRMatch averages r_match over the successful campaigns.
	MeanRMatch float64
}

// RunFleet attacks every module with the same offline product — the
// fleet scenario of a weight file deployed across many machines. The
// campaigns run concurrently on cfg.Workers slots with the
// offline/template/plan/online stages pipelined across campaigns;
// modules with identical hardware identity share one flip template
// through the cross-campaign profile cache. Each campaign's result is
// byte-identical to a standalone HammerOnline run with the same
// HardwareConfig when no fault model is set, and identical at any
// worker count and cache state always.
func RunFleet(v *Victim, off *Offline, modules []FleetModule, cfg FleetConfig) (*FleetSummary, error) {
	if len(modules) == 0 {
		return nil, fmt.Errorf("rowhammer: fleet has no modules")
	}
	cleanFile, err := victimWeightFile(v)
	if err != nil {
		return nil, err
	}
	reqs := core.RequirementsFromCodes(off.inner.OrigCodes, off.inner.BackdooredCodes)
	filePages := len(cleanFile) / memsys.PageSize

	jobs := make([]campaign.Job, len(modules))
	for i, m := range modules {
		dev, err := m.Hardware.resolveDevice()
		if err != nil {
			return nil, fmt.Errorf("rowhammer: fleet module %d: %w", i, err)
		}
		name := m.Name
		if name == "" {
			name = dev.Name
		}
		jobs[i] = campaign.Job{
			Name:       name,
			WeightFile: cleanFile,
			Reqs:       reqs,
			Module: campaign.ModuleSpec{
				Device:    dev,
				SizeBytes: orInt(m.Hardware.ModuleMB, 192) << 20,
				Seed:      orI64(m.Hardware.Seed, 7),
				Fault:     m.Hardware.faultModel(),
			},
			Online: m.Hardware.onlineConfig(filePages),
		}
	}

	ccfg := campaign.Config{
		Workers:       cfg.Workers,
		MaxArenaBytes: int64(cfg.MaxArenaMB) << 20,
	}
	if cfg.OnReport != nil {
		ccfg.OnResult = func(r campaign.Result) { cfg.OnReport(toFleetReport(r)) }
	}
	sum := campaign.Run(jobs, ccfg)

	out := &FleetSummary{
		Reports:   make([]FleetReport, len(sum.Results)),
		Failed:    sum.Failed,
		CacheHits: sum.CacheHits,
	}
	rsum, n := 0.0, 0
	for i, r := range sum.Results {
		out.Reports[i] = toFleetReport(r)
		if r.Err == nil {
			rsum += r.Online.RMatch
			n++
		}
	}
	if n > 0 {
		out.MeanRMatch = rsum / float64(n)
	}
	return out, nil
}

func toFleetReport(r campaign.Result) FleetReport {
	fr := FleetReport{
		Index:    r.Index,
		Name:     r.Name,
		SKU:      r.SKU,
		CacheHit: r.CacheHit,
		Err:      r.Err,
	}
	if r.Online != nil {
		fr.Online = wrapOnline(r.Online)
	}
	return fr
}

// FleetServiceConfig configures an embedded campaignd daemon core — the
// long-running orchestration service behind cmd/campaignd.
type FleetServiceConfig struct {
	// Dir is the durable state root (required). Fleets submitted to the
	// service are checkpointed under it: a process killed mid-fleet
	// resumes on the next StartFleetService over the same directory and
	// finishes with byte-identical results.
	Dir string
	// Workers bounds concurrently executing campaigns per fleet (0 = 1).
	Workers int
	// MaxArenaMB caps estimated in-flight DRAM simulation state per
	// fleet (0 = uncapped).
	MaxArenaMB int
	// CacheEntries bounds the cross-fleet profile cache (0 = unbounded).
	CacheEntries int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// FleetService is a running campaignd core: a durable fleet queue over
// the campaign engine with an HTTP/JSON surface. Mount Handler on any
// http.Server (cmd/campaignd is exactly that plus flags), or drive it
// in-process via SubmitJSON/FleetDone.
type FleetService struct {
	inner *server.Server
}

// StartFleetService opens cfg.Dir, resumes any fleet a previous process
// left unfinished, and starts the service.
func StartFleetService(cfg FleetServiceConfig) (*FleetService, error) {
	s, err := server.New(server.Config{
		Dir:          cfg.Dir,
		Workers:      cfg.Workers,
		MaxArenaMB:   cfg.MaxArenaMB,
		CacheEntries: cfg.CacheEntries,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &FleetService{inner: s}, nil
}

// Handler returns the HTTP API: POST /v1/fleets, GET /v1/fleets,
// GET /v1/fleets/{id}[/stream|/results], GET /v1/skus. See the
// cmd/campaignd documentation for the wire schema and curl examples.
func (s *FleetService) Handler() http.Handler { return s.inner.Handler() }

// SubmitJSON submits a fleet spec (the POST /v1/fleets body) and
// returns its id once the submission is durably checkpointed.
func (s *FleetService) SubmitJSON(spec []byte) (string, error) {
	var fs server.FleetSpec
	if err := json.Unmarshal(spec, &fs); err != nil {
		return "", fmt.Errorf("rowhammer: fleet spec: %w", err)
	}
	return s.inner.Submit(fs)
}

// FleetDone returns a channel closed when the fleet finishes.
func (s *FleetService) FleetDone(id string) (<-chan struct{}, bool) {
	return s.inner.FleetDone(id)
}

// Close stops the service. An in-flight fleet stops at its next stage
// boundary with completed campaigns checkpointed; it resumes on the
// next StartFleetService.
func (s *FleetService) Close() error { return s.inner.Close() }
