package rowhammer

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd drives the façade through the whole pipeline at
// a tiny scale. Behavioral strength (high ASR, preserved TA at
// realistic settings) is asserted by the internal core and experiments
// suites; here the contract of the public API is what is under test.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if victim.CleanAccuracy() < 0.7 {
		t.Fatalf("clean accuracy %.3f too low", victim.CleanAccuracy())
	}
	if victim.WeightFilePages() < 3 {
		t.Fatalf("weight file pages %d", victim.WeightFilePages())
	}

	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 2, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if off.NFlip == 0 {
		t.Fatal("no flips produced")
	}
	if off.Trigger == nil {
		t.Fatal("no trigger produced")
	}
	ta, asr := off.OfflineMetrics()
	if ta <= 0 || ta > 1 || asr < 0 || asr > 1 {
		t.Fatalf("metrics out of range: TA %v ASR %v", ta, asr)
	}

	on, err := HammerOnline(victim, off, HardwareConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if on.Required != off.NFlip {
		t.Fatalf("online required %d != offline NFlip %d", on.Required, off.NFlip)
	}
	if on.Matched == 0 {
		t.Fatal("no required flip landed")
	}

	rep, err := Evaluate(victim, off, on)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NFlipOffline != off.NFlip || rep.RMatch != on.RMatch {
		t.Fatal("report fields inconsistent")
	}
	if rep.OnlineTA <= 0 {
		t.Fatal("online TA missing")
	}
	t.Logf("end-to-end: clean %.3f, offline TA %.3f ASR %.3f, online TA %.3f ASR %.3f, r_match %.2f%%",
		rep.CleanAccuracy, rep.OfflineTA, rep.OfflineASR, rep.OnlineTA, rep.OnlineASR, rep.RMatch)
}

// TestServeUnderFireEndToEnd drives the victim-under-fire façade: the
// online attack runs against a live batched serving engine, each hammer
// round hot-swaps the corrupted file into the victim, and the timeline
// records the degradation/detection trajectory.
func TestServeUnderFireEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains victim and checker models; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 2, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	hw := HardwareConfig{Seed: 3, Rounds: 3}
	tl, err := ServeUnderFire(victim, off, hw, ServeOptions{
		Workers: 2, ReplayQueries: 128, LiveClients: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Online == nil || tl.Online.Matched == 0 {
		t.Fatal("attack achieved nothing under fire")
	}
	wantWindows := len(tl.Online.Rounds) + 1
	if len(tl.Windows) != wantWindows {
		t.Fatalf("windows = %d, want baseline + %d rounds", len(tl.Windows), wantWindows-1)
	}
	w0 := tl.Windows[0]
	if w0.FlipsApplied != 0 || w0.Round != 0 {
		t.Fatalf("baseline window not clean: %+v", w0)
	}
	last := tl.Windows[len(tl.Windows)-1]
	if last.FlipsApplied == 0 {
		t.Fatal("no flips ever reached the serving engine")
	}
	if last.EpochSeq <= w0.EpochSeq {
		t.Fatalf("epoch never advanced: %d → %d", w0.EpochSeq, last.EpochSeq)
	}
	if w0.TA <= 0 || last.TA <= 0 || last.SimQPS <= 0 {
		t.Fatalf("degenerate window stats: first %+v last %+v", w0, last)
	}
	if tl.LiveServed == 0 {
		t.Fatal("live clients served no traffic")
	}

	// The timeline is deterministic: a re-run at a different worker
	// count reproduces every window (live traffic numbers aside).
	tl2, err := ServeUnderFire(victim, off, hw, ServeOptions{
		Workers: 4, ReplayQueries: 128, LiveClients: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl2.Windows) != len(tl.Windows) {
		t.Fatalf("re-run windows %d != %d", len(tl2.Windows), len(tl.Windows))
	}
	for i := range tl.Windows {
		if tl.Windows[i] != tl2.Windows[i] {
			t.Fatalf("window %d differs across worker counts:\n%+v\n%+v", i, tl.Windows[i], tl2.Windows[i])
		}
	}
	t.Logf("under fire: baseline TA %.3f alarm %.3f → final TA %.3f ASR %.3f alarm %.3f, %d flips, detected=%v lag=%d queries, live QPS %.1f (batch %.1f)",
		w0.TA, w0.AlarmRate, last.TA, last.ASR, last.AlarmRate, last.FlipsApplied,
		tl.Detected, tl.DetectionLagQueries, tl.LiveQPS, tl.LiveMeanBatch)
}

// TestRunFleetMatchesHammerOnline pins the fleet engine to the
// single-module path: a no-fault fleet campaign corrupts the weight
// file byte-for-byte as HammerOnline would, identical modules share one
// template, and the streaming callback fires once per campaign.
func TestRunFleetMatchesHammerOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 2, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	hw := HardwareConfig{Seed: 3}
	want, err := HammerOnline(victim, off, hw)
	if err != nil {
		t.Fatal(err)
	}

	streamed := 0
	sum, err := RunFleet(victim, off, []FleetModule{
		{Name: "m0", Hardware: hw},
		{Name: "m1", Hardware: hw},
		{Name: "m2", Hardware: HardwareConfig{Seed: 3, Device: "F1"}},
	}, FleetConfig{Workers: 2, OnReport: func(FleetReport) { streamed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Fatalf("OnReport fired %d times, want 3", streamed)
	}
	if sum.Failed != 0 {
		t.Fatalf("%d campaigns failed", sum.Failed)
	}
	if sum.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1 (m1 shares m0's identity)", sum.CacheHits)
	}
	for _, i := range []int{0, 1} {
		r := sum.Reports[i]
		if !bytes.Equal(r.Online.inner.CorruptedFile, want.inner.CorruptedFile) {
			t.Fatalf("campaign %d corrupted file differs from HammerOnline", i)
		}
		if r.Online.RMatch != want.RMatch || r.Online.Matched != want.Matched {
			t.Fatalf("campaign %d metrics differ from HammerOnline", i)
		}
	}
	if _, err := Evaluate(victim, off, sum.Reports[2].Online); err != nil {
		t.Fatalf("Evaluate on fleet report: %v", err)
	}

	if _, err := RunFleet(victim, off, []FleetModule{{Hardware: HardwareConfig{Device: "Z9"}}}, FleetConfig{}); err == nil {
		t.Fatal("unknown fleet device must fail")
	}
	if _, err := RunFleet(victim, off, nil, FleetConfig{}); err == nil {
		t.Fatal("empty fleet must fail")
	}
}

func TestTrainVictimUnknownArch(t *testing.T) {
	if _, err := TrainVictim(VictimConfig{Arch: "lenet"}); err == nil {
		t.Fatal("unknown architecture must fail")
	}
}

func TestHammerOnlineUnknownDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HammerOnline(victim, off, HardwareConfig{Device: "Z9"}); err == nil {
		t.Fatal("unknown device must fail")
	}
}
