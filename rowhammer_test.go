package rowhammer

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd drives the façade through the whole pipeline at
// a tiny scale. Behavioral strength (high ASR, preserved TA at
// realistic settings) is asserted by the internal core and experiments
// suites; here the contract of the public API is what is under test.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if victim.CleanAccuracy() < 0.7 {
		t.Fatalf("clean accuracy %.3f too low", victim.CleanAccuracy())
	}
	if victim.WeightFilePages() < 3 {
		t.Fatalf("weight file pages %d", victim.WeightFilePages())
	}

	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 2, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if off.NFlip == 0 {
		t.Fatal("no flips produced")
	}
	if off.Trigger == nil {
		t.Fatal("no trigger produced")
	}
	ta, asr := off.OfflineMetrics()
	if ta <= 0 || ta > 1 || asr < 0 || asr > 1 {
		t.Fatalf("metrics out of range: TA %v ASR %v", ta, asr)
	}

	on, err := HammerOnline(victim, off, HardwareConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if on.Required != off.NFlip {
		t.Fatalf("online required %d != offline NFlip %d", on.Required, off.NFlip)
	}
	if on.Matched == 0 {
		t.Fatal("no required flip landed")
	}

	rep, err := Evaluate(victim, off, on)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NFlipOffline != off.NFlip || rep.RMatch != on.RMatch {
		t.Fatal("report fields inconsistent")
	}
	if rep.OnlineTA <= 0 {
		t.Fatal("online TA missing")
	}
	t.Logf("end-to-end: clean %.3f, offline TA %.3f ASR %.3f, online TA %.3f ASR %.3f, r_match %.2f%%",
		rep.CleanAccuracy, rep.OfflineTA, rep.OfflineASR, rep.OnlineTA, rep.OnlineASR, rep.RMatch)
}

// TestRunFleetMatchesHammerOnline pins the fleet engine to the
// single-module path: a no-fault fleet campaign corrupts the weight
// file byte-for-byte as HammerOnline would, identical modules share one
// template, and the streaming callback fires once per campaign.
func TestRunFleetMatchesHammerOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 2, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	hw := HardwareConfig{Seed: 3}
	want, err := HammerOnline(victim, off, hw)
	if err != nil {
		t.Fatal(err)
	}

	streamed := 0
	sum, err := RunFleet(victim, off, []FleetModule{
		{Name: "m0", Hardware: hw},
		{Name: "m1", Hardware: hw},
		{Name: "m2", Hardware: HardwareConfig{Seed: 3, Device: "F1"}},
	}, FleetConfig{Workers: 2, OnReport: func(FleetReport) { streamed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Fatalf("OnReport fired %d times, want 3", streamed)
	}
	if sum.Failed != 0 {
		t.Fatalf("%d campaigns failed", sum.Failed)
	}
	if sum.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1 (m1 shares m0's identity)", sum.CacheHits)
	}
	for _, i := range []int{0, 1} {
		r := sum.Reports[i]
		if !bytes.Equal(r.Online.inner.CorruptedFile, want.inner.CorruptedFile) {
			t.Fatalf("campaign %d corrupted file differs from HammerOnline", i)
		}
		if r.Online.RMatch != want.RMatch || r.Online.Matched != want.Matched {
			t.Fatalf("campaign %d metrics differ from HammerOnline", i)
		}
	}
	if _, err := Evaluate(victim, off, sum.Reports[2].Online); err != nil {
		t.Fatalf("Evaluate on fleet report: %v", err)
	}

	if _, err := RunFleet(victim, off, []FleetModule{{Hardware: HardwareConfig{Device: "Z9"}}}, FleetConfig{}); err == nil {
		t.Fatal("unknown fleet device must fail")
	}
	if _, err := RunFleet(victim, off, nil, FleetConfig{}); err == nil {
		t.Fatal("empty fleet must fail")
	}
}

func TestTrainVictimUnknownArch(t *testing.T) {
	if _, err := TrainVictim(VictimConfig{Arch: "lenet"}); err == nil {
		t.Fatal("unknown architecture must fail")
	}
}

func TestHammerOnlineUnknownDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: trains a victim model; run without -short")
	}
	victim, err := TrainVictim(VictimConfig{Arch: "resnet20", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	off, err := InjectBackdoor(victim, AttackConfig{TargetClass: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HammerOnline(victim, off, HardwareConfig{Device: "Z9"}); err == nil {
		t.Fatal("unknown device must fail")
	}
}
