GO ?= go

.PHONY: build test-short test-race run-campaignd bench-kernels bench-eval bench-train bench-online bench-module bench-campaign bench-offline bench-serve check-bench vet

build:
	$(GO) build ./...

## test-short: fast suite — pure-logic tests plus one cached training run.
## The full-fat suite (victim training in core/baselines/defense and the
## public-API end-to-end test) is plain `go test ./...`; see EXPERIMENTS.md.
test-short:
	$(GO) test -short ./...

## test-race: race detector over the packages with the concurrent kernels
## (worker pool, buffer pool, batch-parallel conv/batchnorm, int8 engine
## incl. the epoch hot-swap flip-storm test and the suffix scorer's
## concurrent candidate fan-out in internal/quant, parallel metric
## evaluation, the batched serving engine in internal/serve, the
## data-parallel trainer incl. the RunOffline short-mode determinism and
## suffix-refinement tests in internal/core, the parallel templating
## engine: profile, sidechan, memsys, the fault-injection pass
## counters in internal/dram, and the campaign engine plus the campaignd
## daemon core — cancellation unwind, single-flight abort/re-election,
## and the kill/resume checkpoint test — in internal/campaign{,/server}).
test-race:
	$(GO) test -race -short ./internal/tensor ./internal/nn ./internal/quant ./internal/metrics ./internal/serve ./internal/core ./internal/profile ./internal/sidechan ./internal/memsys ./internal/dram ./internal/campaign ./internal/campaign/server

## run-campaignd: campaignd smoke run — boots the daemon core, submits
## the built-in two-SKU demo fleet through the real HTTP stack, streams
## its results, and exits non-zero unless every campaign succeeds.
run-campaignd:
	$(GO) run ./cmd/campaignd -demo

## bench-kernels: blocked-GEMM and conv hot-path benchmarks with
## allocation counts. Naive twins run alongside for the speedup ratio.
bench-kernels:
	$(GO) test -run xxx -bench 'MatMul|Conv|GemmI8' -benchmem ./internal/tensor/... ./internal/nn/...

## bench-eval: the attack/defense evaluation-loop benchmarks (int8 engine
## vs fp32 graph, single-thread and parallel), serialized to
## BENCH_eval.json with ns/op and allocs/op per entry.
bench-eval:
	$(GO) test -run xxx -bench 'EvalTAASR|QuantForward|FloatForward' -benchmem \
		./internal/metrics/ ./internal/quant/ | $(GO) run ./cmd/benchjson -o BENCH_eval.json

## bench-train: training-engine benchmarks — batch-32 ResNet-20
## forward+backward (direct vs trainer at 1 and 4 workers, with
## allocation counts) and the full RunOffline reference-attack
## wall-clock — serialized to BENCH_train.json. Add
## `-cpuprofile cpu.out` to the benchjson invocation for a profile.
bench-train:
	$(GO) run ./cmd/benchjson -bench 'TrainStep|OfflineAttack' -pkg ./internal/core -o BENCH_train.json

## bench-online: online templating-engine benchmarks — the full
## ExecuteOnline buffer-size sweep (32768 → 262144 pages at 1/2/4
## workers) plus the profiling, placement and side-channel micro
## benchmarks — merged with the committed pre-optimization baseline
## (BENCH_online_baseline.json, *PrePR entries) into BENCH_online.json.
bench-online:
	$(GO) run ./cmd/benchjson -bench 'ExecuteOnline|ProfileBuffer|PlanPlacement|SpoilerSweep|ClusterByBank' \
		-pkg ./internal/core,./internal/profile,./internal/sidechan -benchtime 1x \
		-merge BENCH_online_baseline.json -o BENCH_online.json

## bench-module: multi-GB module benchmarks — the sparse-storage hammer
## hot loop, anonymous mmap at scale, and end-to-end buffer templating
## up to the full 16 GB (4M-page) module — merged with the committed
## pre-rewrite dense baseline (BENCH_module_baseline.json, *PrePR
## entries) into BENCH_module.json.
bench-module:
	$(GO) run ./cmd/benchjson -bench 'HammerSteady|MmapAnon|ProfileModule' \
		-pkg ./internal/dram,./internal/memsys,./internal/profile -benchtime 1x \
		-merge BENCH_module_baseline.json -o BENCH_module.json

## bench-campaign: fleet campaign-engine benchmarks — the 16-campaign /
## 4-SKU sweep as a serial loop, pipelined at 1/2/4 workers, and
## pipelined with the cross-campaign profile cache — merged with the
## committed serial baseline (BENCH_campaign_baseline.json) into
## BENCH_campaign.json.
bench-campaign:
	$(GO) run ./cmd/benchjson -bench 'FleetSweep/Pipelined' \
		-pkg ./internal/campaign -benchtime 1x \
		-merge BENCH_campaign_baseline.json -o BENCH_campaign.json

## bench-offline: offline-attack refinement benchmarks — one constraint
## enforcement step with full-forward scoring vs the incremental suffix
## scorer (1 and 4 workers) plus the end-to-end RunOffline wall-clock —
## merged with the committed pre-scorer baseline
## (BENCH_offline_baseline.json, *PrePR entries) into BENCH_offline.json.
bench-offline:
	$(GO) run ./cmd/benchjson -bench 'Refinement|OfflineAttack' \
		-pkg ./internal/core -benchtime 3x \
		-merge BENCH_offline_baseline.json -o BENCH_offline.json

## bench-serve: serving-engine benchmarks — batched micro-batching QPS at
## 1/2/4 executor workers and the flip-storm vs quiescent hot-swap
## degradation — merged with the committed unbatched single-request
## baseline (BENCH_serve_baseline.json) into BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/benchjson -bench 'ServeQPS/batched|ServeFlipStorm' \
		-pkg ./internal/serve -benchtime 2s \
		-merge BENCH_serve_baseline.json -o BENCH_serve.json

## check-bench: validate every committed benchjson report against the
## schema (strict fields, non-empty, sane values) and its *_baseline.json
## — fails on perf-history drift such as renamed or dropped benchmarks.
check-bench:
	$(GO) run ./cmd/benchjson -check BENCH_*.json

## vet: static checks plus a cross-compile of the portable (non-AVX2)
## code paths — the asm files are amd64-gated, so arm64 must build pure Go —
## plus the committed-benchmark schema check and the race suite over the
## concurrent engines.
vet: check-bench test-race
	$(GO) vet ./...
	GOARCH=arm64 $(GO) build ./...
