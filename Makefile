GO ?= go

.PHONY: build test-short test-race bench-kernels vet

build:
	$(GO) build ./...

## test-short: fast suite — pure-logic tests plus one cached training run.
## The full-fat suite (victim training in core/baselines/defense and the
## public-API end-to-end test) is plain `go test ./...`; see EXPERIMENTS.md.
test-short:
	$(GO) test -short ./...

## test-race: race detector over the packages with the concurrent kernels
## (worker pool, buffer pool, batch-parallel conv/batchnorm).
test-race:
	$(GO) test -race -short ./internal/tensor ./internal/nn

## bench-kernels: blocked-GEMM and conv hot-path benchmarks with
## allocation counts. Naive twins run alongside for the speedup ratio.
bench-kernels:
	$(GO) test -run xxx -bench 'MatMul|Conv' -benchmem ./internal/tensor/... ./internal/nn/...

vet:
	$(GO) vet ./...
